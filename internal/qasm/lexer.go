// Package qasm implements an OpenQASM 2.0 front end covering the
// language subset accepted by the paper's tool: register
// declarations, the builtin U/CX primitives, the qelib1 standard gate
// library, user-defined gate macros, measurement, reset, barriers and
// classically-controlled operations.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // integer or real literal
	tokString
	tokSemicolon
	tokComma
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokArrow // ->
	tokEqEq  // ==
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
)

// String names the token kind for error messages.
func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSemicolon:
		return "';'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokArrow:
		return "'->'"
	case tokEqEq:
		return "'=='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

// Error renders the parse error with its source position.
func (e *Error) Error() string {
	return fmt.Sprintf("qasm:%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peek() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for l.pos < len(l.src) {
			r := l.peek()
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				b.WriteRune(l.advance())
			} else {
				break
			}
		}
		tok.kind = tokIdent
		tok.text = b.String()
		return tok, nil
	case unicode.IsDigit(r) || r == '.':
		var b strings.Builder
		seenDot := false
		seenExp := false
		for l.pos < len(l.src) {
			r := l.peek()
			switch {
			case unicode.IsDigit(r):
				b.WriteRune(l.advance())
			case r == '.' && !seenDot && !seenExp:
				seenDot = true
				b.WriteRune(l.advance())
			case (r == 'e' || r == 'E') && !seenExp && b.Len() > 0:
				seenExp = true
				b.WriteRune(l.advance())
				if l.peek() == '+' || l.peek() == '-' {
					b.WriteRune(l.advance())
				}
			default:
				goto doneNumber
			}
		}
	doneNumber:
		if b.String() == "." {
			return token{}, l.errf("malformed number")
		}
		tok.kind = tokNumber
		tok.text = b.String()
		return tok, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) && l.peek() != '"' {
			b.WriteRune(l.advance())
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		l.advance()
		tok.kind = tokString
		tok.text = b.String()
		return tok, nil
	}
	l.advance()
	switch r {
	case ';':
		tok.kind = tokSemicolon
	case ',':
		tok.kind = tokComma
	case '(':
		tok.kind = tokLParen
	case ')':
		tok.kind = tokRParen
	case '{':
		tok.kind = tokLBrace
	case '}':
		tok.kind = tokRBrace
	case '[':
		tok.kind = tokLBracket
	case ']':
		tok.kind = tokRBracket
	case '+':
		tok.kind = tokPlus
	case '*':
		tok.kind = tokStar
	case '/':
		tok.kind = tokSlash
	case '^':
		tok.kind = tokCaret
	case '-':
		if l.peek() == '>' {
			l.advance()
			tok.kind = tokArrow
		} else {
			tok.kind = tokMinus
		}
	case '=':
		if l.peek() == '=' {
			l.advance()
			tok.kind = tokEqEq
		} else {
			return token{}, l.errf("unexpected '=' (did you mean '==')")
		}
	default:
		return token{}, l.errf("unexpected character %q", r)
	}
	return tok, nil
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
