package qasm

import (
	"fmt"
	"math"
	"strconv"
)

// expr is a parameter expression AST evaluated against the formal
// parameters of a gate macro (empty environment at top level).
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numExpr float64

func (e numExpr) eval(map[string]float64) (float64, error) { return float64(e), nil }

type piExpr struct{}

func (piExpr) eval(map[string]float64) (float64, error) { return math.Pi, nil }

type varExpr struct {
	name      string
	line, col int
}

func (e varExpr) eval(env map[string]float64) (float64, error) {
	if v, ok := env[e.name]; ok {
		return v, nil
	}
	return 0, &Error{Line: e.line, Col: e.col, Msg: fmt.Sprintf("unknown parameter %q", e.name)}
}

type unaryExpr struct {
	op rune // '-'
	x  expr
}

func (e unaryExpr) eval(env map[string]float64) (float64, error) {
	v, err := e.x.eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

type binExpr struct {
	op        rune // '+', '-', '*', '/', '^'
	l, r      expr
	line, col int
}

func (e binExpr) eval(env map[string]float64) (float64, error) {
	a, err := e.l.eval(env)
	if err != nil {
		return 0, err
	}
	b, err := e.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case '+':
		return a + b, nil
	case '-':
		return a - b, nil
	case '*':
		return a * b, nil
	case '/':
		if b == 0 {
			return 0, &Error{Line: e.line, Col: e.col, Msg: "division by zero in parameter expression"}
		}
		return a / b, nil
	case '^':
		return math.Pow(a, b), nil
	}
	return 0, &Error{Line: e.line, Col: e.col, Msg: fmt.Sprintf("unknown operator %q", e.op)}
}

type callExpr struct {
	fn        string
	arg       expr
	line, col int
}

func (e callExpr) eval(env map[string]float64) (float64, error) {
	v, err := e.arg.eval(env)
	if err != nil {
		return 0, err
	}
	switch e.fn {
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		if v <= 0 {
			return 0, &Error{Line: e.line, Col: e.col, Msg: "ln of non-positive value"}
		}
		return math.Log(v), nil
	case "sqrt":
		if v < 0 {
			return 0, &Error{Line: e.line, Col: e.col, Msg: "sqrt of negative value"}
		}
		return math.Sqrt(v), nil
	}
	return 0, &Error{Line: e.line, Col: e.col, Msg: fmt.Sprintf("unknown function %q", e.fn)}
}

// Expression grammar (OpenQASM 2.0 §A.2):
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | pow
//	pow    := primary ('^' unary)?
//	primary:= number | 'pi' | ident | ident '(' expr ')' | '(' expr ')'
func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPlus && t.kind != tokMinus {
			return l, nil
		}
		p.advance()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := '+'
		if t.kind == tokMinus {
			op = '-'
		}
		l = binExpr{op: op, l: l, r: r, line: t.line, col: t.col}
	}
}

func (p *parser) parseTerm() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokStar && t.kind != tokSlash {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := '*'
		if t.kind == tokSlash {
			op = '/'
		}
		l = binExpr{op: op, l: l, r: r, line: t.line, col: t.col}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if t := p.peek(); t.kind == tokMinus {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: '-', x: x}, nil
	}
	return p.parsePow()
}

func (p *parser) parsePow() (expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokCaret {
		p.advance()
		exp, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return binExpr{op: '^', l: base, r: exp, line: t.line, col: t.col}, nil
	}
	return base, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("malformed number %q", t.text)}
		}
		return numExpr(v), nil
	case tokIdent:
		p.advance()
		if t.text == "pi" {
			return piExpr{}, nil
		}
		if p.peek().kind == tokLParen {
			p.advance()
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return callExpr{fn: t.text, arg: arg, line: t.line, col: t.col}, nil
		}
		return varExpr{name: t.text, line: t.line, col: t.col}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected expression, found %s", t.kind)}
}
