package qasm

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quantumdd/internal/qc"
)

func parseOK(t *testing.T, src string) *qc.Circuit {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return c
}

func parseErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected parse error containing %q, got success", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

const bellSrc = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[1];
cx q[1],q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseBell(t *testing.T) {
	c := parseOK(t, bellSrc)
	if c.NQubits != 2 || c.NClbits != 2 {
		t.Fatalf("register sizes: %d qubits, %d clbits", c.NQubits, c.NClbits)
	}
	if len(c.Ops) != 4 {
		t.Fatalf("op count %d, want 4", len(c.Ops))
	}
	if c.Ops[0].Gate != qc.H || c.Ops[0].Targets[0] != 1 {
		t.Fatalf("first op wrong: %s", c.Ops[0].String())
	}
	if c.Ops[1].Gate != qc.X || len(c.Ops[1].Controls) != 1 || c.Ops[1].Controls[0].Qubit != 1 {
		t.Fatalf("second op wrong: %s", c.Ops[1].String())
	}
	if c.Ops[2].Kind != qc.KindMeasure || c.Ops[2].Cbit != 0 {
		t.Fatalf("third op wrong: %s", c.Ops[2].String())
	}
}

func TestParseHeaderOptionalAndComments(t *testing.T) {
	c := parseOK(t, `
// line comment
/* block
   comment */
qreg q[1];
h q[0]; // trailing
`)
	if len(c.Ops) != 1 {
		t.Fatalf("ops = %d", len(c.Ops))
	}
}

func TestParseVersionRejected(t *testing.T) {
	parseErr(t, "OPENQASM 3.0;\nqreg q[1];\n", "unsupported OpenQASM version")
}

func TestParameterExpressions(t *testing.T) {
	c := parseOK(t, `
qreg q[1];
p(pi/2) q[0];
p(-pi/4) q[0];
p(2*pi/8) q[0];
p(cos(0)) q[0];
p(3^2) q[0];
p((pi+pi)/4) q[0];
`)
	want := []float64{math.Pi / 2, -math.Pi / 4, math.Pi / 4, 1, 9, math.Pi / 2}
	for i, w := range want {
		if got := c.Ops[i].Params[0]; math.Abs(got-w) > 1e-12 {
			t.Errorf("op %d angle = %v, want %v", i, got, w)
		}
	}
}

func TestBroadcasting(t *testing.T) {
	c := parseOK(t, `
qreg q[3];
h q;
`)
	if len(c.Ops) != 3 {
		t.Fatalf("broadcast produced %d ops, want 3", len(c.Ops))
	}
	for i, op := range c.Ops {
		if op.Gate != qc.H || op.Targets[0] != i {
			t.Fatalf("broadcast op %d wrong: %s", i, op.String())
		}
	}
	// Two-register broadcast: cx a,b with |a|=|b|=2.
	c = parseOK(t, `
qreg a[2];
qreg b[2];
cx a,b;
`)
	if len(c.Ops) != 2 {
		t.Fatalf("cx broadcast produced %d ops", len(c.Ops))
	}
	if c.Ops[1].Controls[0].Qubit != 1 || c.Ops[1].Targets[0] != 3 {
		t.Fatalf("flattening wrong: %s", c.Ops[1].String())
	}
	parseErr(t, "qreg a[2];\nqreg b[3];\ncx a,b;\n", "broadcast register sizes differ")
}

func TestMultipleRegistersFlatten(t *testing.T) {
	c := parseOK(t, `
qreg a[1];
qreg b[2];
x b[1];
`)
	if c.NQubits != 3 {
		t.Fatalf("flattened qubits = %d", c.NQubits)
	}
	if c.Ops[0].Targets[0] != 2 {
		t.Fatalf("b[1] should be global qubit 2, got %d", c.Ops[0].Targets[0])
	}
}

func TestGateMacroExpansion(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
gate mygate(theta) a, b {
  h a;
  cx a, b;
  p(theta/2) b;
}
mygate(pi) q[1], q[0];
`)
	if len(c.Ops) != 3 {
		t.Fatalf("macro expanded to %d ops, want 3", len(c.Ops))
	}
	if c.Ops[0].Gate != qc.H || c.Ops[0].Targets[0] != 1 {
		t.Fatalf("macro op 0 wrong: %s", c.Ops[0].String())
	}
	if c.Ops[2].Gate != qc.P || math.Abs(c.Ops[2].Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("macro parameter not substituted: %s", c.Ops[2].String())
	}
}

func TestNestedMacro(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
gate inner a { h a; }
gate outer a, b { inner a; cx a, b; inner b; }
outer q[0], q[1];
`)
	if len(c.Ops) != 3 {
		t.Fatalf("nested macro expanded to %d ops, want 3", len(c.Ops))
	}
}

func TestMacroUsingPrimitiveU(t *testing.T) {
	c := parseOK(t, `
qreg q[1];
gate myh a { U(pi/2, 0, pi) a; }
myh q[0];
`)
	if len(c.Ops) != 1 || c.Ops[0].Gate != qc.U {
		t.Fatalf("U primitive expansion wrong: %+v", c.Ops)
	}
}

func TestQelib1Natives(t *testing.T) {
	c := parseOK(t, `
qreg q[3];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0];
t q[0]; tdg q[0]; sx q[0]; sxdg q[0];
u1(0.1) q[0]; u2(0.1,0.2) q[0]; u3(0.1,0.2,0.3) q[0]; u(0.1,0.2,0.3) q[0]; p(0.1) q[0];
rx(0.1) q[0]; ry(0.1) q[0]; rz(0.1) q[0];
cx q[0],q[1]; cy q[0],q[1]; cz q[0],q[1]; ch q[0],q[1];
cp(0.1) q[0],q[1]; cu1(0.1) q[0],q[1]; crx(0.1) q[0],q[1]; cry(0.1) q[0],q[1]; crz(0.1) q[0],q[1];
cu3(0.1,0.2,0.3) q[0],q[1];
ccx q[0],q[1],q[2];
swap q[0],q[1];
cswap q[0],q[1],q[2];
`)
	if got := c.NumGates(); got != 32 {
		t.Fatalf("parsed %d gates, want 32", got)
	}
	// cswap lowers to controlled Swap.
	last := c.Ops[len(c.Ops)-1]
	if last.Gate != qc.Swap || len(last.Controls) != 1 {
		t.Fatalf("cswap lowering wrong: %s", last.String())
	}
}

func TestRedeclaredBuiltinSkipped(t *testing.T) {
	// qelib1.inc-style redeclaration of builtins must be tolerated.
	c := parseOK(t, `
qreg q[1];
gate h a { U(pi/2, 0, pi) a; }
h q[0];
`)
	if len(c.Ops) != 1 || c.Ops[0].Gate != qc.H {
		t.Fatalf("builtin redeclaration handling wrong: %+v", c.Ops)
	}
}

func TestClassicalControl(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
creg c[2];
measure q[0] -> c[0];
if (c==1) x q[1];
`)
	op := c.Ops[1]
	if op.Cond == nil || op.Cond.Value != 1 || len(op.Cond.Bits) != 2 {
		t.Fatalf("condition not attached: %+v", op)
	}
	parseErr(t, "qreg q[1];\ncreg c[1];\nif (c==1) barrier q;\n", "cannot be classically controlled")
}

func TestMeasureVariants(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
creg c[2];
measure q -> c;
`)
	if len(c.Ops) != 2 {
		t.Fatalf("register measure expanded to %d ops", len(c.Ops))
	}
	parseErr(t, "qreg q[2];\ncreg c[3];\nmeasure q -> c;\n", "sizes differ")
	parseErr(t, "qreg q[2];\ncreg c[2];\nmeasure q[0] -> c;\n", "both be indexed")
}

func TestResetAndBarrier(t *testing.T) {
	c := parseOK(t, `
qreg q[2];
reset q[0];
reset q;
barrier q;
`)
	if c.Ops[0].Kind != qc.KindReset {
		t.Fatal("reset not parsed")
	}
	if len(c.Ops) != 4 {
		t.Fatalf("ops = %d, want 4 (1 + 2 resets + barrier)", len(c.Ops))
	}
	if c.Ops[3].Kind != qc.KindBarrier {
		t.Fatal("barrier not parsed")
	}
}

func TestOpaqueIgnored(t *testing.T) {
	c := parseOK(t, `
qreg q[1];
opaque magic(alpha) a;
h q[0];
`)
	if len(c.Ops) != 1 {
		t.Fatalf("opaque polluted ops: %d", len(c.Ops))
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("qreg q[1];\nbadgate q[0];\n")
	if err == nil {
		t.Fatal("expected unknown gate error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if perr.Line != 2 {
		t.Fatalf("error line = %d, want 2", perr.Line)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"", "no quantum register"},
		{"qreg q[0];", "invalid register size"},
		{"qreg q[1];\nqreg q[1];", "already declared"},
		{"qreg q[2];\nh q[5];", "out of range"},
		{"qreg q[2];\ncx q[0],q[0];", "overlap"},
		{"qreg q[1];\nh p[0];", "unknown quantum register"},
		{"qreg q[1];\np() q[0];", "takes 1 parameter"},
		{"qreg q[1];\nh q[0]", "expected"},
		{"qreg q[1];\ninclude \"other.inc\";", "qelib1.inc"},
		{"qreg q[1];\np(1/0) q[0];", "division by zero"},
		{"qreg q[1];\np(ln(-1)) q[0];", "ln of non-positive"},
		{"qreg q[1];\np(blah) q[0];", "unknown parameter"},
		{"qreg q[1];\np(foo(1)) q[0];", "unknown function"},
		{"qreg q[1];\nh q[0]; = ;", "unexpected '='"},
		{"qreg q[1];\n/* unterminated", "unterminated block comment"},
		{"qreg q[1];\nh \"str\";", "expected"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.want)
	}
}

func TestRecursiveMacroRejected(t *testing.T) {
	parseErr(t, `
qreg q[1];
gate a x { b x; }
`, "unknown gate")
	// Mutual recursion is impossible in QASM 2.0 (use-before-def is an
	// error), but self-recursion through the depth guard:
	// a gate cannot call itself because it is not yet defined while
	// its body is parsed — verify that is reported.
	parseErr(t, `
qreg q[1];
gate a x { a x; }
a q[0];
`, "unknown gate")
}

func TestRoundTripWithQCExport(t *testing.T) {
	src := parseOK(t, bellSrc).QASM()
	c2 := parseOK(t, src)
	if c2.NumGates() != 2 || c2.NQubits != 2 {
		t.Fatalf("round trip changed the circuit:\n%s", src)
	}
}

func TestParseFileWithIncludes(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "mylib.inc")
	if err := os.WriteFile(lib, []byte("gate myh a { h a; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	main := filepath.Join(dir, "main.qasm")
	src := `OPENQASM 2.0;
include "qelib1.inc";
include "mylib.inc";
qreg q[1];
myh q[0];
`
	if err := os.WriteFile(main, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ParseFile(main)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 || c.Ops[0].Gate != qc.H {
		t.Fatalf("included gate not expanded: %+v", c.Ops)
	}
	// Missing include errors.
	bad := filepath.Join(dir, "bad.qasm")
	if err := os.WriteFile(bad, []byte("include \"nope.inc\";\nqreg q[1];\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFile(bad); err == nil {
		t.Fatal("missing include accepted")
	}
}

func TestIncludeWithoutResolverRejected(t *testing.T) {
	parseErr(t, "include \"other.inc\";\nqreg q[1];\n", "only \"qelib1.inc\" is built in")
}

func TestIncludeCycleGuard(t *testing.T) {
	resolve := func(name string) (string, error) {
		return "include \"self.inc\";\n", nil // endless self-include
	}
	_, err := ParseWithIncludes("include \"self.inc\";\nqreg q[1];\n", resolve)
	if err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("cycle not caught: %v", err)
	}
}
