package realfmt

import "testing"

// FuzzParse checks the .real parser never panics, and that circuits it
// accepts survive a write/parse round trip when serializable.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# comment\n.version 1.0\n.numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n",
		".numvars 3\n.variables a b c\n.begin\nf3 a b c\nv a b\nv+ a c\np3 a b c\n.end\n",
		".numvars 1\n.begin\nt1 x0\n.end\n",
		".numvars 2\n.variables a b\n.begin\nt2 -a b\n.end\n",
		".begin\n.end\n",
		".numvars 2\n.variables a b\n.begin\nt9 a b\n.end",
		".numvars 2\n.variables a a\n.begin\n.end",
		".define\n",
		".numvars 2\n.variables a b\n.begin\nt2 a b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		circ, err := ParseString(src)
		if err != nil {
			return
		}
		out, err := WriteString(circ)
		if err != nil {
			return // circuits with v/v+ etc. always serialize; others may not
		}
		if _, err := ParseString(out); err != nil {
			t.Fatalf("serialized .real does not re-parse: %v\n%s", err, out)
		}
	})
}
