// Package realfmt parses the RevLib ".real" reversible-circuit format,
// the second input format of the paper's tool ("in either .qasm or
// .real format", Sec. IV-B).
//
// The supported subset covers the gate libraries found in the RevLib
// benchmark suite: multi-controlled Toffoli gates (t1, t2, t3, …),
// Fredkin/controlled-swap gates (f2, f3, …), and controlled square-
// root-of-NOT gates (v, v+). A '-' prefix on a control variable
// denotes a negative control. Variables are mapped to qubits in
// declaration order: the first variable of ".variables" becomes
// qubit 0.
package realfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"quantumdd/internal/qc"
)

// Error is a parse error with a line number.
type Error struct {
	Line int
	Msg  string
}

// Error renders the parse error with its line number.
func (e *Error) Error() string { return fmt.Sprintf("real:%d: %s", e.Line, e.Msg) }

// Parse reads a .real circuit description.
func Parse(r io.Reader) (*qc.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var (
		line     int
		numvars  = -1
		vars     []string
		varIndex = map[string]int{}
		circ     *qc.Circuit
		begun    bool
		ended    bool
	)
	errf := func(format string, args ...interface{}) error {
		return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if ended {
			return nil, errf("content after .end")
		}
		fields := strings.Fields(text)
		key := strings.ToLower(fields[0])
		switch {
		case key == ".version":
			// informational
		case key == ".numvars":
			if len(fields) != 2 {
				return nil, errf(".numvars takes one argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, errf("invalid .numvars %q", fields[1])
			}
			numvars = n
		case key == ".variables":
			if numvars < 0 {
				return nil, errf(".variables before .numvars")
			}
			if len(fields)-1 != numvars {
				return nil, errf(".variables lists %d names, .numvars says %d", len(fields)-1, numvars)
			}
			for i, name := range fields[1:] {
				if _, dup := varIndex[name]; dup {
					return nil, errf("duplicate variable %q", name)
				}
				varIndex[name] = i
				vars = append(vars, name)
			}
		case key == ".inputs" || key == ".outputs" || key == ".constants" || key == ".garbage" || key == ".inputbus" || key == ".outputbus" || key == ".state" || key == ".module":
			// Metadata irrelevant for simulation/verification semantics.
		case key == ".define":
			return nil, errf(".define modules are not supported")
		case key == ".begin":
			if numvars < 0 {
				return nil, errf(".begin before .numvars")
			}
			if len(vars) == 0 {
				// Circuits may omit .variables; synthesize names x0…
				for i := 0; i < numvars; i++ {
					name := fmt.Sprintf("x%d", i)
					varIndex[name] = i
					vars = append(vars, name)
				}
			}
			circ = qc.New(numvars, 0)
			circ.Name = "real"
			begun = true
		case key == ".end":
			if !begun {
				return nil, errf(".end before .begin")
			}
			ended = true
		default:
			if !begun {
				return nil, errf("unexpected directive %q before .begin", fields[0])
			}
			if err := parseGateLine(circ, varIndex, fields, line); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if circ == nil {
		return nil, &Error{Line: line, Msg: "no .begin section found"}
	}
	if !ended {
		return nil, &Error{Line: line, Msg: "missing .end"}
	}
	return circ, nil
}

// ParseString parses a .real description held in a string.
func ParseString(src string) (*qc.Circuit, error) { return Parse(strings.NewReader(src)) }

func parseGateLine(circ *qc.Circuit, varIndex map[string]int, fields []string, line int) error {
	errf := func(format string, args ...interface{}) error {
		return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	spec := strings.ToLower(fields[0])
	operandNames := fields[1:]
	// Resolve operands with optional '-' negative-control markers.
	type operand struct {
		qubit int
		neg   bool
	}
	operands := make([]operand, len(operandNames))
	seen := map[int]bool{}
	for i, name := range operandNames {
		neg := false
		if strings.HasPrefix(name, "-") {
			neg = true
			name = name[1:]
		}
		idx, ok := varIndex[name]
		if !ok {
			return errf("unknown variable %q", name)
		}
		if seen[idx] {
			return errf("variable %q used twice in one gate", name)
		}
		seen[idx] = true
		operands[i] = operand{qubit: idx, neg: neg}
	}
	kind := spec
	size := -1
	// Split e.g. "t3" into kind "t" and size 3; "v+" stays as is.
	for i, r := range spec {
		if r >= '0' && r <= '9' {
			kind = spec[:i]
			n, err := strconv.Atoi(spec[i:])
			if err != nil {
				return errf("malformed gate spec %q", spec)
			}
			size = n
			break
		}
	}
	if size >= 0 && size != len(operands) {
		return errf("gate %q expects %d operands, got %d", spec, size, len(operands))
	}
	controlsOf := func(ops []operand) []qc.Control {
		ctl := make([]qc.Control, len(ops))
		for i, o := range ops {
			ctl[i] = qc.Control{Qubit: o.qubit, Neg: o.neg}
		}
		return ctl
	}
	switch kind {
	case "t":
		// Multi-controlled Toffoli: last operand is the target.
		if len(operands) < 1 {
			return errf("t gate needs at least a target")
		}
		tgt := operands[len(operands)-1]
		if tgt.neg {
			return errf("target of %q cannot be negated", spec)
		}
		circ.Gate(qc.X, nil, tgt.qubit, controlsOf(operands[:len(operands)-1])...)
	case "f":
		// Fredkin: last two operands are swapped.
		if len(operands) < 2 {
			return errf("f gate needs two targets")
		}
		a, b := operands[len(operands)-2], operands[len(operands)-1]
		if a.neg || b.neg {
			return errf("targets of %q cannot be negated", spec)
		}
		circ.SwapGate(a.qubit, b.qubit, controlsOf(operands[:len(operands)-2])...)
	case "v":
		if len(operands) < 1 {
			return errf("v gate needs a target")
		}
		tgt := operands[len(operands)-1]
		if tgt.neg {
			return errf("target of %q cannot be negated", spec)
		}
		circ.Gate(qc.V, nil, tgt.qubit, controlsOf(operands[:len(operands)-1])...)
	case "v+":
		if len(operands) < 1 {
			return errf("v+ gate needs a target")
		}
		tgt := operands[len(operands)-1]
		if tgt.neg {
			return errf("target of %q cannot be negated", spec)
		}
		circ.Gate(qc.Vdg, nil, tgt.qubit, controlsOf(operands[:len(operands)-1])...)
	case "p":
		// Peres gate p3 a b c = t3 a b c; t2 a b (decomposed form).
		if len(operands) != 3 {
			return errf("peres gate takes 3 operands")
		}
		for _, o := range operands {
			if o.neg {
				return errf("peres operands cannot be negated")
			}
		}
		a, b, t := operands[0].qubit, operands[1].qubit, operands[2].qubit
		circ.CCX(a, b, t)
		circ.CX(a, b)
	default:
		return errf("unsupported gate kind %q", spec)
	}
	return nil
}
