package realfmt

import (
	"fmt"
	"io"
	"strings"

	"quantumdd/internal/qc"
)

// Write serializes a circuit in RevLib .real syntax. Only gates with a
// .real spelling are supported: X with any number of controls (tN),
// Swap with controls (fN), and V/V† with controls. Barriers are
// emitted as comments; other operations are rejected.
func Write(w io.Writer, c *qc.Circuit) error {
	names := make([]string, c.NQubits)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	fmt.Fprintln(w, ".version 1.0")
	fmt.Fprintf(w, ".numvars %d\n", c.NQubits)
	fmt.Fprintf(w, ".variables %s\n", strings.Join(names, " "))
	fmt.Fprintf(w, ".inputs %s\n", strings.Join(names, " "))
	fmt.Fprintf(w, ".outputs %s\n", strings.Join(names, " "))
	fmt.Fprintln(w, ".begin")
	for i := range c.Ops {
		op := &c.Ops[i]
		switch op.Kind {
		case qc.KindBarrier:
			fmt.Fprintln(w, "# barrier")
			continue
		case qc.KindGate:
			// handled below
		default:
			return fmt.Errorf("realfmt: operation %q has no .real representation", op.String())
		}
		operands := make([]string, 0, len(op.Controls)+len(op.Targets))
		for _, ctl := range op.Controls {
			name := names[ctl.Qubit]
			if ctl.Neg {
				name = "-" + name
			}
			operands = append(operands, name)
		}
		for _, t := range op.Targets {
			operands = append(operands, names[t])
		}
		var spec string
		switch op.Gate {
		case qc.X:
			spec = fmt.Sprintf("t%d", len(operands))
		case qc.Swap:
			spec = fmt.Sprintf("f%d", len(operands))
		case qc.V:
			spec = "v"
		case qc.Vdg:
			spec = "v+"
		default:
			return fmt.Errorf("realfmt: gate %q has no .real representation", op.Gate)
		}
		fmt.Fprintf(w, "%s %s\n", spec, strings.Join(operands, " "))
	}
	fmt.Fprintln(w, ".end")
	return nil
}

// WriteString serializes a circuit into a .real string.
func WriteString(c *qc.Circuit) (string, error) {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		return "", err
	}
	return b.String(), nil
}
