package realfmt

import (
	"strings"
	"testing"

	"quantumdd/internal/qc"
	"quantumdd/internal/verify"
)

func TestWriteRoundTrip(t *testing.T) {
	c := qc.New(3, 0)
	c.CCX(0, 1, 2)
	c.CX(0, 1)
	c.X(0)
	c.SwapGate(1, 2, qc.Control{Qubit: 0})
	c.Gate(qc.V, nil, 2, qc.Control{Qubit: 0})
	c.Gate(qc.Vdg, nil, 2, qc.Control{Qubit: 0})
	c.X(1, qc.Control{Qubit: 0, Neg: true})
	c.Barrier()
	src, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t3 x0 x1 x2", "t2 x0 x1", "t1 x0", "f3 x0 x1 x2", "v x0 x2", "v+ x0 x2", "t2 -x0 x1", "# barrier"} {
		if !strings.Contains(src, want) {
			t.Fatalf("serialized .real missing %q:\n%s", want, src)
		}
	}
	back, err := ParseString(src)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, src)
	}
	res, err := verify.Check(c, back, verify.Construction)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("round trip changed the functionality")
	}
}

func TestWriteRejectsUnsupported(t *testing.T) {
	c := qc.New(1, 0)
	c.H(0)
	if _, err := WriteString(c); err == nil {
		t.Fatal("H has no .real spelling and must be rejected")
	}
	m := qc.New(1, 1)
	m.Measure(0, 0)
	if _, err := WriteString(m); err == nil {
		t.Fatal("measure must be rejected")
	}
}
