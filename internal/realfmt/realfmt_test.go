package realfmt

import (
	"strings"
	"testing"

	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/verify"
)

const toffoliReal = `
# a standard RevLib header
.version 1.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.constants ---
.garbage ---
.begin
t3 a b c
t2 a b
t1 a
.end
`

func TestParseToffoliNetwork(t *testing.T) {
	c, err := ParseString(toffoliReal)
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 3 {
		t.Fatalf("qubits = %d", c.NQubits)
	}
	if c.NumGates() != 3 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	// t3 a b c: controls a(0), b(1), target c(2).
	op := c.Ops[0]
	if op.Gate != qc.X || op.Targets[0] != 2 || len(op.Controls) != 2 {
		t.Fatalf("t3 parsed wrong: %s", op.String())
	}
	// t1 a: plain NOT on qubit 0.
	op = c.Ops[2]
	if op.Gate != qc.X || op.Targets[0] != 0 || len(op.Controls) != 0 {
		t.Fatalf("t1 parsed wrong: %s", op.String())
	}
}

func TestParseNegativeControls(t *testing.T) {
	c, err := ParseString(`
.numvars 2
.variables a b
.begin
t2 -a b
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	op := c.Ops[0]
	if !op.Controls[0].Neg {
		t.Fatalf("negative control not parsed: %s", op.String())
	}
}

func TestParseFredkinAndV(t *testing.T) {
	c, err := ParseString(`
.numvars 3
.variables a b c
.begin
f3 a b c
v a b
v+ a b
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops[0].Gate != qc.Swap || len(c.Ops[0].Controls) != 1 {
		t.Fatalf("fredkin parsed wrong: %s", c.Ops[0].String())
	}
	if c.Ops[1].Gate != qc.V || c.Ops[1].Targets[0] != 1 {
		t.Fatalf("v parsed wrong: %s", c.Ops[1].String())
	}
	if c.Ops[2].Gate != qc.Vdg {
		t.Fatalf("v+ parsed wrong: %s", c.Ops[2].String())
	}
}

func TestVVEqualsCNOT(t *testing.T) {
	// The classic identity: a CCX equals the v/v+ network
	// (Barenco et al.); here the simpler single-control version:
	// v a b; v a b  ==  t1-free CNOT? No — V·V = X, so two
	// controlled-V with the same control equal one CNOT.
	vv, err := ParseString(`
.numvars 2
.variables a b
.begin
v a b
v a b
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	cx, err := ParseString(`
.numvars 2
.variables a b
.begin
t2 a b
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := verify.Check(vv, cx, verify.Construction)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("v;v is not equivalent to CNOT")
	}
}

func TestPeresDecomposition(t *testing.T) {
	c, err := ParseString(`
.numvars 3
.variables a b c
.begin
p3 a b c
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Fatalf("peres expanded to %d gates, want 2", c.NumGates())
	}
	// Check the permutation semantics: |110⟩ (a=0,b=1,c=1 in our
	// little-endian variable order => bits: a=q0, b=q1, c=q2).
	p := dd.New(3)
	u, _, err := verify.BuildFunctionality(p, c)
	if err != nil {
		t.Fatal(err)
	}
	// Peres: c ^= a&b, then b ^= a. For a=1,b=1,c=0 (index 0b011):
	// c -> 1, b -> 0 => index 0b101.
	if got := dd.MatrixEntry(u, 0b101, 0b011); got != 1 {
		t.Fatalf("peres action wrong: entry = %v", got)
	}
}

func TestMissingVariablesSynthesized(t *testing.T) {
	c, err := ParseString(`
.numvars 2
.begin
t2 x0 x1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 2 || c.NumGates() != 1 {
		t.Fatal("synthesized variable names not working")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{".begin\n.end", ".begin before .numvars"},
		{".numvars 2\n.variables a\n.begin\n.end", ".variables lists 1 names"},
		{".numvars 0\n.begin\n.end", "invalid .numvars"},
		{".numvars 2\n.variables a a\n.begin\n.end", "duplicate variable"},
		{".numvars 2\n.variables a b\n.begin\nt2 a z\n.end", "unknown variable"},
		{".numvars 2\n.variables a b\n.begin\nt2 a a\n.end", "used twice"},
		{".numvars 2\n.variables a b\n.begin\nt3 a b\n.end", "expects 3 operands"},
		{".numvars 2\n.variables a b\n.begin\nq2 a b\n.end", "unsupported gate kind"},
		{".numvars 2\n.variables a b\n.begin\nt2 a -b\n.end", "cannot be negated"},
		{".numvars 2\n.variables a b\n.begin\nt2 a b\n", "missing .end"},
		{".numvars 2\n.variables a b\n.begin\n.end\nt2 a b\n", "content after .end"},
		{"t2 a b\n.end", "before .begin"},
		{".numvars 1\n.define foo\n.begin\n.end", "not supported"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("source %q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err.Error(), c.want)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	c, err := ParseString(`
# leading comment

.numvars 1

# between directives
.begin
t1 x0
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Fatal("comments broke parsing")
	}
}
