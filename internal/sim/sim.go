// Package sim implements DD-based simulation of quantum circuits with
// the interaction model of the paper's tool (Sec. IV-B): stepping
// forward and backward through the circuit, running to the end or to
// the next special operation (breakpoint), and handling measurements,
// resets and classically-controlled operations — including the
// "dialog" where a caller chooses the outcome of a measurement in
// superposition.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs/trace"
	"quantumdd/internal/qc"
)

// EventKind describes what a simulation step did.
type EventKind int

const (
	EventGate      EventKind = iota // a unitary gate was applied
	EventBarrier                    // a barrier was passed (breakpoint)
	EventMeasure                    // a measurement collapsed the state
	EventReset                      // a reset re-initialized a qubit
	EventCondSkip                   // a classically-controlled gate did not fire
	EventCondApply                  // a classically-controlled gate fired
	EventEnd                        // no operation left
)

// Event reports the effect of one executed operation.
type Event struct {
	Kind    EventKind
	OpIndex int     // index of the executed op
	Op      *qc.Op  // the executed op (nil for EventEnd; first op of a fused run)
	Outcome int     // measurement/reset outcome (pre-reset value)
	P0, P1  float64 // branch probabilities shown in the dialog
	Fused   int     // additional ops folded into this gate event by peephole fusion
}

// OutcomeChooser decides measurement (and pre-reset) outcomes when a
// qubit is in superposition — the role of the tool's pop-up dialog.
// Implementations return 0 or 1.
type OutcomeChooser func(op *qc.Op, qubit int, p0, p1 float64) int

// Simulator steps a circuit on a decision-diagram state.
type Simulator struct {
	pkg   *dd.Pkg
	circ  *qc.Circuit
	state dd.VEdge
	pos   int // index of the next op to execute

	classical []int // classical bit values (-1 = never written)

	// history holds a snapshot per executed op so that stepping
	// backward restores non-unitary effects exactly.
	history []snapshot

	rng     *rand.Rand
	chooser OutcomeChooser

	// GCThreshold triggers a DD garbage collection when the unique
	// tables grow past this many nodes (0 disables automatic GC).
	GCThreshold int

	// approxThreshold, when positive, prunes branches below this
	// probability after every gate (see dd.Approximate); fidelity
	// keeps the cumulative product of per-step fidelities.
	approxThreshold float64
	approxFidelity  float64

	// generic routes gates through MakeGateDD+MultMV instead of the
	// ApplyGate kernel — the differential-test oracle path.
	generic bool

	// fusion enables peephole folding of adjacent single-qubit gate
	// runs on the same target into one 2×2 matrix per step.
	fusion bool

	// workers and trajObserver configure the trajectory pool
	// (pool.go); they have no effect on a single interactive
	// simulator but ride on Option so RunNoisy keeps one variadic
	// options surface for both per-trajectory and ensemble settings.
	workers      int
	trajObserver func(seconds float64)

	peakNodes int // largest state diagram observed
}

type snapshot struct {
	state     dd.VEdge
	classical []int
	span      int // circuit ops covered by this snapshot (>1 for fused runs)
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithSeed makes sampled outcomes deterministic.
func WithSeed(seed int64) Option {
	return func(s *Simulator) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithChooser installs an interactive outcome chooser; without one,
// outcomes are sampled from the Born probabilities.
func WithChooser(c OutcomeChooser) Option {
	return func(s *Simulator) { s.chooser = c }
}

// WithApproximation enables approximate simulation: after every gate,
// branches whose probability falls below threshold are pruned and the
// state renormalized (dd.Approximate). The running fidelity estimate
// is available via ApproxFidelity. Threshold must be in [0, 1).
func WithApproximation(threshold float64) Option {
	return func(s *Simulator) { s.approxThreshold = threshold }
}

// WithGenericApply routes every gate through the generic
// MakeGateDD+MultMV path instead of the specialized ApplyGate kernel.
// The two are equivalent; the generic path serves as the oracle in
// differential tests and as an escape hatch. It disables fusion.
func WithGenericApply() Option {
	return func(s *Simulator) { s.generic = true }
}

// WithFusion enables peephole gate fusion: a run of adjacent
// uncontrolled, unconditional single-qubit gates on the same target is
// folded into one 2×2 matrix and applied in a single kernel call. A
// fused run executes as one step — StepForward consumes the whole run
// (Event.Fused reports the extra ops) and StepBackward rewinds it
// atomically, so fusion is off by default to keep the op-by-op
// stepping of the interactive tool.
func WithFusion() Option {
	return func(s *Simulator) { s.fusion = true }
}

// WithMaxNodes caps the decision-diagram unique tables at n live
// nodes (see dd.Pkg.SetMaxNodes). When a gate application would
// exceed the cap, StepForward returns an error matching
// dd.ErrResourceExhausted and leaves the state at the last good
// position instead of exhausting process memory.
func WithMaxNodes(n int) Option {
	return func(s *Simulator) { s.pkg.SetMaxNodes(n) }
}

// WithShapeInterval enables structural shape profiling of the state
// diagram: every n executed steps the simulator publishes a
// dd.ShapeProfile (per-level occupancy, sharing factor, edge-weight
// histogram) readable via Pkg().LastShape(). n ≤ 0 (the default)
// disables sampling; the disabled per-step check is a single branch
// and allocation-free. The profile walk is O(nodes), so the
// amortized overhead at stride n is bounded by ~1/n of the step cost.
func WithShapeInterval(n int) Option {
	return func(s *Simulator) { s.pkg.SetShapeInterval(n) }
}

// WithWorkers sets the trajectory pool width for RunNoisy: the
// ensemble is fanned out over n independent DD engine replicas.
// 0 (the default) uses runtime.GOMAXPROCS(0); 1 runs sequentially on
// the calling goroutine. Results are bit-identical for every worker
// count (see pool.go). The option is ignored outside RunNoisy.
func WithWorkers(n int) Option {
	return func(s *Simulator) { s.workers = n }
}

// WithTrajectoryObserver installs a callback invoked with the
// wall-clock seconds of every completed trajectory in a RunNoisy
// ensemble — the hook the server's trajectory_seconds histogram and
// completion counters hang off. It may be called concurrently from
// pool workers, so the callback must be safe for concurrent use
// (e.g. an atomic histogram Observe). Ignored outside RunNoisy.
func WithTrajectoryObserver(fn func(seconds float64)) Option {
	return func(s *Simulator) { s.trajObserver = fn }
}

// New creates a simulator for the circuit, starting in |0…0⟩.
func New(circ *qc.Circuit, opts ...Option) *Simulator {
	return newOn(dd.New(circ.NQubits), circ, opts...)
}

// newOn builds a simulator on an existing DD package — the replica
// pool (pool.go) reuses one engine per worker across trajectories so
// unique tables, interned gates, and slab arenas stay warm.
func newOn(p *dd.Pkg, circ *qc.Circuit, opts ...Option) *Simulator {
	s := &Simulator{
		pkg:            p,
		circ:           circ,
		state:          p.ZeroState(),
		classical:      make([]int, circ.NClbits),
		rng:            rand.New(rand.NewSource(1)),
		GCThreshold:    1 << 20,
		approxFidelity: 1,
	}
	for i := range s.classical {
		s.classical[i] = -1
	}
	for _, o := range opts {
		o(s)
	}
	s.pkg.IncRefV(s.state)
	return s
}

// Pkg exposes the underlying DD package (for visualization and stats).
func (s *Simulator) Pkg() *dd.Pkg { return s.pkg }

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *qc.Circuit { return s.circ }

// State returns the current decision-diagram state.
func (s *Simulator) State() dd.VEdge { return s.state }

// Pos returns the index of the next operation to execute.
func (s *Simulator) Pos() int { return s.pos }

// AtEnd reports whether the whole circuit has been executed.
func (s *Simulator) AtEnd() bool { return s.pos >= len(s.circ.Ops) }

// AtStart reports whether no operation has been executed.
func (s *Simulator) AtStart() bool { return s.pos == 0 }

// Classical returns a copy of the classical bit values (-1 for bits
// never written by a measurement).
func (s *Simulator) Classical() []int {
	out := make([]int, len(s.classical))
	copy(out, s.classical)
	return out
}

func (s *Simulator) setState(e dd.VEdge) {
	s.pkg.IncRefV(e)
	s.pkg.DecRefV(s.state)
	s.state = e
	if n := dd.SizeV(e); n > s.peakNodes {
		s.peakNodes = n
	}
	if s.GCThreshold > 0 {
		s.maybeGC()
	}
	s.pkg.MaybeShapeV(s.state)
}

// PeakNodes reports the largest state diagram seen so far — the
// "strengths and limits" indicator surfaced by the tool's statistics.
func (s *Simulator) PeakNodes() int {
	if n := dd.SizeV(s.state); n > s.peakNodes {
		s.peakNodes = n
	}
	return s.peakNodes
}

func (s *Simulator) maybeGC() {
	// O(1) threshold check against the incrementally maintained live
	// counter — this runs after every operation, so walking the
	// per-level unique tables here would dominate small-state loops.
	if s.pkg.LiveNodes() < s.GCThreshold {
		return
	}
	// Protect history snapshots (they are already ref-counted when
	// pushed), then collect.
	s.pkg.GarbageCollect()
}

// release drops every diagram reference this simulator holds — the
// current state and all history snapshots — returning the shared DD
// package to the pool in a collectible state. The simulator must not
// be used afterwards. Only the trajectory pool calls this: an
// interactive simulator owns its package and lets it die with the
// session instead.
func (s *Simulator) release() {
	for i := range s.history {
		s.pkg.DecRefV(s.history[i].state)
	}
	s.history = nil
	s.pkg.DecRefV(s.state)
	s.state = dd.VZero()
}

// StepForward executes the next operation and reports what happened.
// Reaching the end yields an EventEnd without error.
func (s *Simulator) StepForward() (Event, error) {
	return s.StepForwardCtx(context.Background())
}

// stepSpanName maps an op onto the stable session-op span name — no
// formatting, so naming costs nothing beyond the enabled check.
func stepSpanName(op *qc.Op) string {
	switch op.Kind {
	case qc.KindBarrier:
		return "step:barrier"
	case qc.KindMeasure:
		return "step:measure"
	case qc.KindReset:
		return "step:reset"
	default:
		if op.Cond != nil {
			return "step:cond-gate"
		}
		return "step:gate"
	}
}

// StepForwardCtx is StepForward under a trace context: when a flight
// recorder rides on ctx (trace.With), the step is recorded as a
// session-op span carrying the DD attributes triage needs — node
// counts before/after, compute-table and apply-table hit deltas,
// fusion width, and whether the node budget aborted the step — with
// the gate application and the engine's top-level DD operations as
// child spans. Without a recorder it is exactly StepForward: the
// tracing path adds no allocations.
func (s *Simulator) StepForwardCtx(ctx context.Context) (Event, error) {
	if !trace.Enabled(ctx) {
		return s.stepForward(ctx)
	}
	name := "step:end"
	if !s.AtEnd() {
		name = stepSpanName(&s.circ.Ops[s.pos])
	}
	ctx, sp := trace.StartSpan(ctx, name)
	sp.SetAttr("op_index", int64(s.pos))
	sp.SetAttr("nodes_before", int64(dd.SizeV(s.state)))
	before := s.pkg.Stats()
	ev, err := s.stepForward(ctx)
	after := s.pkg.Stats()
	sp.SetAttr("nodes_after", int64(dd.SizeV(s.state)))
	sp.SetAttr("ct_hits", int64(after.CacheHits-before.CacheHits))
	sp.SetAttr("apply_ct_hits", int64(after.ApplyCTHits-before.ApplyCTHits))
	if ev.Fused > 0 {
		sp.SetAttr("fused", int64(ev.Fused))
	}
	if err != nil && errors.Is(err, dd.ErrResourceExhausted) {
		sp.SetAttr("budget_exhausted", 1)
	}
	sp.End()
	return ev, err
}

// stepForward is the untimed step body; ctx carries the trace span
// the gate application parents under.
func (s *Simulator) stepForward(ctx context.Context) (Event, error) {
	if s.AtEnd() {
		return Event{Kind: EventEnd, OpIndex: s.pos}, nil
	}
	op := &s.circ.Ops[s.pos]
	// Snapshot for backward stepping.
	snap := snapshot{state: s.state, classical: append([]int(nil), s.classical...), span: 1}
	s.pkg.IncRefV(snap.state)
	ev := Event{OpIndex: s.pos, Op: op}
	switch op.Kind {
	case qc.KindBarrier:
		ev.Kind = EventBarrier
	case qc.KindMeasure:
		q := op.Targets[0]
		outcome, collapsed, p0, p1, err := s.measure(op, q)
		if err != nil {
			s.pkg.DecRefV(snap.state)
			return Event{}, err
		}
		s.setState(collapsed)
		s.classical[op.Cbit] = outcome
		ev.Kind = EventMeasure
		ev.Outcome = outcome
		ev.P0, ev.P1 = p0, p1
	case qc.KindReset:
		q := op.Targets[0]
		outcome, collapsed, p0, p1, err := s.measure(op, q)
		if err != nil {
			s.pkg.DecRefV(snap.state)
			return Event{}, err
		}
		if outcome == 1 {
			collapsed = s.pkg.ApplyX(collapsed, q)
		}
		s.setState(collapsed)
		ev.Kind = EventReset
		ev.Outcome = outcome
		ev.P0, ev.P1 = p0, p1
	case qc.KindGate:
		if op.Cond != nil && !s.condHolds(op.Cond) {
			ev.Kind = EventCondSkip
			break
		}
		run := s.fusionRun(op)
		var next dd.VEdge
		var err error
		var asp *trace.Span
		if trace.Enabled(ctx) {
			// Name the application span after the concrete gate — the
			// string build only happens with a recorder attached.
			if run > 1 {
				_, asp = trace.StartSpan(ctx, "fused-run "+op.String())
				asp.SetAttr("width", int64(run))
			} else {
				_, asp = trace.StartSpan(ctx, "apply "+op.String())
			}
		}
		if run > 1 {
			next, err = s.applyFused(run)
		} else {
			next, err = s.applyGate(op)
		}
		asp.End()
		if err != nil {
			s.pkg.DecRefV(snap.state)
			return Event{}, err
		}
		if s.approxThreshold > 0 {
			approx, fid, _, _ := s.pkg.Approximate(next, s.approxThreshold)
			s.approxFidelity *= fid
			next = approx
		}
		s.setState(next)
		snap.span = run
		ev.Fused = run - 1
		if op.Cond != nil {
			ev.Kind = EventCondApply
		} else {
			ev.Kind = EventGate
		}
	default:
		s.pkg.DecRefV(snap.state)
		return Event{}, fmt.Errorf("sim: unknown op kind %d", op.Kind)
	}
	s.history = append(s.history, snap)
	s.pos += snap.span
	return ev, nil
}

// measure obtains an outcome for qubit q: deterministic when one
// branch has probability ~0, otherwise via the chooser (dialog) or by
// sampling.
func (s *Simulator) measure(op *qc.Op, q int) (outcome int, collapsed dd.VEdge, p0, p1 float64, err error) {
	p1 = s.pkg.ProbOne(s.state, q)
	p0 = 1 - p1
	const eps = 1e-12
	switch {
	case p1 <= eps:
		outcome = 0
	case p0 <= eps:
		outcome = 1
	case s.chooser != nil:
		outcome = s.chooser(op, q, p0, p1)
		if outcome != 0 && outcome != 1 {
			return 0, dd.VZero(), p0, p1, fmt.Errorf("sim: chooser returned invalid outcome %d", outcome)
		}
	default:
		outcome = 0
		if s.rng.Float64() < p1 {
			outcome = 1
		}
	}
	collapsed, err = s.pkg.Collapse(s.state, q, outcome)
	return outcome, collapsed, p0, p1, err
}

func (s *Simulator) condHolds(c *qc.Condition) bool {
	var v uint64
	for i, b := range c.Bits {
		bit := s.classical[b]
		if bit == 1 {
			v |= 1 << uint(i)
		}
	}
	return v == c.Value
}

// applyGate applies one gate op under the node budget. Single-target
// gates go through the specialized ApplyGate kernel; Swap (a genuine
// two-target op) and the generic-oracle mode fall back to building the
// matrix diagram and the generic multiply.
func (s *Simulator) applyGate(op *qc.Op) (dd.VEdge, error) {
	if s.generic || op.Gate == qc.Swap {
		g, err := s.gateDD(op)
		if err != nil {
			return dd.VZero(), err
		}
		return s.pkg.MultMVChecked(g, s.state)
	}
	ctl := make([]dd.Control, len(op.Controls))
	for i, c := range op.Controls {
		ctl[i] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	return s.pkg.ApplyGateChecked(s.state, dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ctl...)
}

// fusable reports whether an op may join a peephole fusion run: an
// unconditional, uncontrolled single-qubit unitary.
func fusable(op *qc.Op) bool {
	return op.Kind == qc.KindGate && op.Cond == nil && len(op.Controls) == 0 &&
		op.Gate != qc.Swap && len(op.Targets) == 1
}

// fusionRun returns how many ops starting at the current position fold
// into one kernel call (1 when fusion is off or the run is trivial).
func (s *Simulator) fusionRun(op *qc.Op) int {
	if !s.fusion || s.generic || !fusable(op) {
		return 1
	}
	run := 1
	for s.pos+run < len(s.circ.Ops) {
		next := &s.circ.Ops[s.pos+run]
		if !fusable(next) || next.Targets[0] != op.Targets[0] {
			break
		}
		run++
	}
	return run
}

// applyFused multiplies the run's 2×2 matrices (later gates on the
// left) and applies the product in one kernel call.
func (s *Simulator) applyFused(run int) (dd.VEdge, error) {
	first := &s.circ.Ops[s.pos]
	m := qc.Matrix2(first.Gate, first.Params)
	for i := 1; i < run; i++ {
		op := &s.circ.Ops[s.pos+i]
		m = mul2(qc.Matrix2(op.Gate, op.Params), m)
	}
	next, err := s.pkg.ApplyGateChecked(s.state, dd.GateMatrix(m), first.Targets[0])
	if err != nil {
		return dd.VZero(), err
	}
	s.pkg.AddGatesFused(run - 1)
	return next, nil
}

// mul2 returns the 2×2 matrix product a·b (row-major).
func mul2(a, b [4]complex128) [4]complex128 {
	return [4]complex128{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

func (s *Simulator) gateDD(op *qc.Op) (dd.MEdge, error) {
	ctl := make([]dd.Control, len(op.Controls))
	for i, c := range op.Controls {
		ctl[i] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	if op.Gate == qc.Swap {
		return s.pkg.MakeSwapDD(op.Targets[0], op.Targets[1], ctl...), nil
	}
	return s.pkg.MakeGateDD(dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ctl...), nil
}

// StepBackward undoes the most recently executed operation (including
// non-unitary ones, by restoring the snapshot) and reports whether a
// step was undone. A simulator resumed from a snapshot has no history
// before the restore point, so stepping backward across it reports
// false rather than failing.
func (s *Simulator) StepBackward() bool {
	if s.pos == 0 || len(s.history) == 0 {
		return false
	}
	snap := s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	s.pkg.DecRefV(s.state)
	s.state = snap.state // snapshot already holds a reference
	s.classical = snap.classical
	s.pos -= snap.span // a fused run rewinds atomically
	return true
}

// RunToBreak executes operations until just after the next special
// operation (barrier/measure/reset/conditional), or to the end — the
// ⏭ button of the tool. It returns the events executed.
func (s *Simulator) RunToBreak() ([]Event, error) {
	return s.RunToBreakCtx(context.Background())
}

// RunToBreakCtx is RunToBreak with trace propagation: each executed
// operation lands as a session-op span under ctx's current span.
func (s *Simulator) RunToBreakCtx(ctx context.Context) ([]Event, error) {
	var events []Event
	for !s.AtEnd() {
		op := &s.circ.Ops[s.pos]
		ev, err := s.StepForwardCtx(ctx)
		if err != nil {
			return events, err
		}
		events = append(events, ev)
		if op.IsSpecial() {
			break
		}
	}
	return events, nil
}

// RunToEnd executes all remaining operations — ⏭ without breakpoints.
func (s *Simulator) RunToEnd() ([]Event, error) {
	return s.RunToEndCtx(context.Background())
}

// RunToEndCtx is RunToEnd with trace propagation.
func (s *Simulator) RunToEndCtx(ctx context.Context) ([]Event, error) {
	var events []Event
	for !s.AtEnd() {
		ev, err := s.StepForwardCtx(ctx)
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// Rewind returns to the initial state |0…0⟩ — the ⏮ button.
func (s *Simulator) Rewind() {
	for s.StepBackward() {
	}
}

// ProbOne returns the probability of measuring qubit q as |1⟩ in the
// current state.
func (s *Simulator) ProbOne(q int) float64 { return s.pkg.ProbOne(s.state, q) }

// ApproxFidelity reports the cumulative fidelity estimate of an
// approximate simulation (1 when approximation is off or never fired).
// Note: stepping backward does not restore previously spent fidelity.
func (s *Simulator) ApproxFidelity() float64 { return s.approxFidelity }

// Sample draws shots basis states from the current state without
// disturbing it (weak simulation).
func (s *Simulator) Sample(shots int) map[int64]int {
	return dd.SampleCounts(s.state, shots, s.rng)
}

// Amplitudes returns the dense current state (exponential; for tests
// and small-instance visualization).
func (s *Simulator) Amplitudes() []complex128 { return s.pkg.Vector(s.state) }

// Run simulates the whole circuit with the given seed and returns the
// classical results and final state — the batch entry point.
func Run(circ *qc.Circuit, seed int64) (classical []int, final dd.VEdge, p *dd.Pkg, err error) {
	s := New(circ, WithSeed(seed))
	if _, err := s.RunToEnd(); err != nil {
		return nil, dd.VZero(), nil, err
	}
	return s.Classical(), s.State(), s.Pkg(), nil
}
