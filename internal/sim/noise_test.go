package sim

import (
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/qc"
)

func TestNoiselessTrajectoriesMatchExact(t *testing.T) {
	res, err := RunNoisy(algorithms.Bell(), NoiseModel{}, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorEvents != 0 {
		t.Fatalf("noiseless run injected %d errors", res.ErrorEvents)
	}
	if res.Counts[1] != 0 || res.Counts[2] != 0 {
		t.Fatalf("impossible outcomes sampled: %v", res.Counts)
	}
	if res.Counts[0] < 800 || res.Counts[3] < 800 {
		t.Fatalf("counts far from 50/50: %v", res.Counts)
	}
}

func TestCertainBitFlip(t *testing.T) {
	// X on q0 followed by a guaranteed bit-flip error restores |0⟩.
	c := qc.New(1, 0)
	c.X(0)
	res, err := RunNoisy(c, NoiseModel{BitFlip: 1}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 100 {
		t.Fatalf("certain bit flip: counts %v, want all |0>", res.Counts)
	}
	if res.ErrorEvents != 100 {
		t.Fatalf("error events = %d, want 100", res.ErrorEvents)
	}
}

func TestDepolarizingDegradesGHZ(t *testing.T) {
	circ := algorithms.GHZ(4)
	clean, err := RunNoisy(circ, NoiseModel{}, 1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunNoisy(circ, NoiseModel{Depolarizing: 0.05}, 1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	legal := func(counts map[int64]int) float64 {
		return float64(counts[0]+counts[15]) / 1500
	}
	if legal(clean.Counts) < 0.999 {
		t.Fatalf("clean GHZ has illegal outcomes: %v", clean.Counts)
	}
	if legal(noisy.Counts) > 0.95 {
		t.Fatalf("5%% depolarizing noise left %v of outcomes legal — too clean", legal(noisy.Counts))
	}
	if noisy.ErrorEvents == 0 {
		t.Fatal("no errors injected")
	}
}

func TestPhaseFlipInvisibleInZBasis(t *testing.T) {
	// Phase flips commute with Z-basis preparation/measurement of a
	// basis state: counts must be unaffected even at rate 1.
	c := qc.New(2, 0)
	c.X(0).X(1)
	res, err := RunNoisy(c, NoiseModel{PhaseFlip: 1}, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[3] != 200 {
		t.Fatalf("phase flips changed Z-basis outcomes: %v", res.Counts)
	}
}

func TestNoiseValidation(t *testing.T) {
	if _, err := RunNoisy(algorithms.Bell(), NoiseModel{BitFlip: 1.5}, 10, 1); err == nil {
		t.Fatal("invalid probability accepted")
	}
	if _, err := RunNoisy(algorithms.Bell(), NoiseModel{BitFlip: 0.6, PhaseFlip: 0.6}, 10, 1); err == nil {
		t.Fatal("over-unit combined probability accepted")
	}
	if _, err := RunNoisy(algorithms.Bell(), NoiseModel{}, 0, 1); err == nil {
		t.Fatal("zero trajectories accepted")
	}
}

func TestNoisyRunWithMidCircuitMeasurement(t *testing.T) {
	// Teleportation under mild noise still mostly works; mainly checks
	// trajectories handle measurement + classical control.
	res, err := RunNoisy(algorithms.Teleport(1.0, 0.3), NoiseModel{Depolarizing: 0.01}, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trajectories != 50 || len(res.Counts) == 0 {
		t.Fatalf("malformed result: %+v", res)
	}
	if res.MeanNodes <= 0 {
		t.Fatal("missing node statistics")
	}
}
