package sim

// Resuming a simulator from durable session state (internal/snapshot):
// the spill-to-disk path serializes the circuit source, position,
// classical bits and the DD state; restore re-parses the circuit and
// rebuilds a Simulator around the decoded diagram. The step history is
// not persisted — it can hold a snapshot per executed op, which would
// defeat the point of a compact snapshot — so a restored session
// resumes exactly where it was but cannot step backward past the
// restore point (StepBackward reports false, like at the start of a
// run).

import (
	"fmt"

	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// Resume reconstructs a Simulator mid-circuit. The restore callback
// receives the simulator's freshly configured DD package (options —
// notably WithMaxNodes — are applied first, so a node budget caps the
// decode too) and returns the state edge; typically it wraps
// dd.DecodeVectorBinary. Inputs are validated: an out-of-range
// position, a classical register of the wrong shape, or a state of
// the wrong qubit count is rejected rather than trusted.
func Resume(circ *qc.Circuit, pos int, classical []int, peakNodes int, restore func(*dd.Pkg) (dd.VEdge, error), opts ...Option) (*Simulator, error) {
	if pos < 0 || pos > len(circ.Ops) {
		return nil, fmt.Errorf("sim: resume position %d out of range [0,%d]", pos, len(circ.Ops))
	}
	if len(classical) != circ.NClbits {
		return nil, fmt.Errorf("sim: resume with %d classical bits, circuit has %d", len(classical), circ.NClbits)
	}
	for i, c := range classical {
		if c < -1 || c > 1 {
			return nil, fmt.Errorf("sim: resume classical bit %d has invalid value %d", i, c)
		}
	}
	s := New(circ, opts...)
	state, err := restore(s.pkg)
	if err != nil {
		return nil, err
	}
	if state.IsZero() {
		return nil, fmt.Errorf("sim: resumed state is the zero vector")
	}
	if state.Level() != circ.NQubits-1 {
		return nil, fmt.Errorf("sim: resumed state at level %d, circuit has %d qubits", state.Level(), circ.NQubits)
	}
	s.setState(state)
	s.pos = pos
	copy(s.classical, classical)
	if peakNodes > s.peakNodes {
		s.peakNodes = peakNodes
	}
	return s, nil
}
