package sim

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
)

// sameNoisyResult compares the worker-count-invariant fields of two
// results: everything except Workers itself must be bit-identical.
func sameNoisyResult(t *testing.T, ref, got *NoisyResult, label string) {
	t.Helper()
	if got.Trajectories != ref.Trajectories || got.Requested != ref.Requested || got.Failed != ref.Failed {
		t.Fatalf("%s: progress mismatch: got %d/%d (%d failed), want %d/%d (%d failed)",
			label, got.Trajectories, got.Requested, got.Failed, ref.Trajectories, ref.Requested, ref.Failed)
	}
	if got.ErrorEvents != ref.ErrorEvents {
		t.Fatalf("%s: error events %d, want %d", label, got.ErrorEvents, ref.ErrorEvents)
	}
	if got.MeanNodes != ref.MeanNodes {
		t.Fatalf("%s: mean nodes %v, want %v (must be bit-identical)", label, got.MeanNodes, ref.MeanNodes)
	}
	if len(got.Counts) != len(ref.Counts) {
		t.Fatalf("%s: %d distinct outcomes, want %d", label, len(got.Counts), len(ref.Counts))
	}
	for k, v := range ref.Counts {
		if got.Counts[k] != v {
			t.Fatalf("%s: counts[%d] = %d, want %d", label, k, got.Counts[k], v)
		}
	}
}

// TestWorkerSweepBitIdentical is the order-independence regression
// test: the same ensemble must produce a bit-identical result for
// every worker count, including a pool wider than the trajectory
// count.
func TestWorkerSweepBitIdentical(t *testing.T) {
	circ := algorithms.GHZ(6)
	model := NoiseModel{Depolarizing: 0.05}
	const trajectories = 300

	ref, err := RunNoisy(circ, model, trajectories, 42, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Workers != 1 || ref.Trajectories != trajectories || ref.ErrorEvents == 0 {
		t.Fatalf("malformed sequential reference: %+v", ref)
	}

	sweep := []int{2, 3, runtime.NumCPU(), trajectories + 50}
	for _, w := range sweep {
		got, err := RunNoisy(circ, model, trajectories, 42, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got.Workers > trajectories {
			t.Fatalf("workers=%d: pool wider than the ensemble (%d)", w, got.Workers)
		}
		sameNoisyResult(t, ref, got, "workers="+string(rune('0'+min(w, 9))))
	}
}

// TestWorkerSweepWithMidCircuitMeasurement repeats the sweep on a
// circuit whose trajectories draw measurement outcomes mid-circuit
// (classical control), the harder determinism case: every draw must
// come from the trajectory's private stream.
func TestWorkerSweepWithMidCircuitMeasurement(t *testing.T) {
	circ := algorithms.Teleport(1.0, 0.3)
	model := NoiseModel{Depolarizing: 0.02}
	ref, err := RunNoisy(circ, model, 120, 7, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := RunNoisy(circ, model, 120, 7, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameNoisyResult(t, ref, got, "teleport sweep")
	}
}

// TestTrajectorySeedMixing checks the counter mixer produces distinct,
// index-addressed seeds: no collisions over a large range, no
// dependence on evaluation order, and adjacent indices decorrelated.
func TestTrajectorySeedMixing(t *testing.T) {
	seen := make(map[int64]int, 100000)
	for i := 0; i < 100000; i++ {
		s := TrajectorySeed(99, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indices %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if TrajectorySeed(99, 5) != TrajectorySeed(99, 5) {
		t.Fatal("TrajectorySeed is not a pure function")
	}
	if TrajectorySeed(99, 5) == TrajectorySeed(98, 5) {
		t.Fatal("ensemble seed ignored")
	}
	// Low bits must not be constant across adjacent indices (a classic
	// weak-mixer failure that rand.NewSource would amplify).
	var low int64
	for i := 0; i < 64; i++ {
		low |= TrajectorySeed(1, i) & 1
	}
	if low == 0 {
		t.Fatal("low bit constant over 64 adjacent indices")
	}
}

// TestBudgetExhaustionPartialResult: a node budget far too small for
// the circuit fails every trajectory, but the ensemble still returns a
// partial result (not nil) carrying the failure tally, and the error
// unwraps to dd.ErrResourceExhausted. The verdict must be identical
// for every worker count — budget checks are per-replica, and the
// per-trajectory GC resets each replica to the same baseline.
func TestBudgetExhaustionPartialResult(t *testing.T) {
	circ := algorithms.GHZ(14)
	const trajectories = 20
	for _, w := range []int{1, 4} {
		res, err := RunNoisy(circ, NoiseModel{Depolarizing: 0.01}, trajectories, 3,
			WithWorkers(w), WithMaxNodes(4))
		if err == nil {
			t.Fatalf("workers=%d: budget exhaustion not reported", w)
		}
		if !errors.Is(err, dd.ErrResourceExhausted) {
			t.Fatalf("workers=%d: error %v does not unwrap to ErrResourceExhausted", w, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: partial result discarded", w)
		}
		if res.Failed != trajectories || res.Trajectories != 0 {
			t.Fatalf("workers=%d: %d completed / %d failed, want 0/%d", w, res.Trajectories, res.Failed, trajectories)
		}
		if !res.IsPartial() {
			t.Fatalf("workers=%d: result not marked partial: %+v", w, res)
		}
		if res.MeanNodes != 0 || len(res.Counts) != 0 {
			t.Fatalf("workers=%d: failed trajectories leaked statistics: %+v", w, res)
		}
	}
}

// TestBudgetVerdictsDeterministicAcrossWorkers uses a budget that some
// trajectories fit under and others (with more injected errors) may
// not — whatever the split, it must be the same split for every
// worker count.
func TestBudgetVerdictsDeterministicAcrossWorkers(t *testing.T) {
	circ := algorithms.GHZ(8)
	model := NoiseModel{Depolarizing: 0.1}
	ref, refErr := RunNoisy(circ, model, 80, 11, WithWorkers(1), WithMaxNodes(64))
	for _, w := range []int{2, 5} {
		got, err := RunNoisy(circ, model, 80, 11, WithWorkers(w), WithMaxNodes(64))
		if (err == nil) != (refErr == nil) {
			t.Fatalf("workers=%d: error presence differs: %v vs %v", w, err, refErr)
		}
		sameNoisyResult(t, ref, got, "budget sweep")
	}
}

// TestPoolCancellation cancels mid-ensemble: the call must return the
// partial result with the context error, and every pool goroutine must
// have exited (mirrors the web server's Close leak check).
func TestPoolCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	observer := func(float64) {
		if n.Add(1) == 10 {
			cancel()
		}
	}
	res, err := RunNoisyCtx(ctx, algorithms.GHZ(10), NoiseModel{Depolarizing: 0.02},
		100000, 5, WithWorkers(4), WithTrajectoryObserver(observer))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res == nil || res.Trajectories == 0 || !res.IsPartial() {
		t.Fatalf("cancellation discarded completed work: %+v", res)
	}
	if res.Trajectories >= res.Requested {
		t.Fatalf("cancellation did not trim the ensemble: %+v", res)
	}

	// All workers must be gone; poll briefly since wg.Wait() returning
	// only guarantees the worker bodies finished.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak: %d before, %d after cancellation", before, g)
	}
}

// TestObserverCountsCompletions: the trajectory observer fires exactly
// once per completed trajectory, on every worker count.
func TestObserverCountsCompletions(t *testing.T) {
	for _, w := range []int{1, 3} {
		var n atomic.Int64
		res, err := RunNoisy(algorithms.Bell(), NoiseModel{}, 50, 1,
			WithWorkers(w), WithTrajectoryObserver(func(float64) { n.Add(1) }))
		if err != nil {
			t.Fatal(err)
		}
		if int(n.Load()) != res.Trajectories || res.Trajectories != 50 {
			t.Fatalf("workers=%d: observer fired %d times for %d completions", w, n.Load(), res.Trajectories)
		}
	}
}

// TestResolveWorkers pins the clamping rules the API documents.
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := resolveWorkers(8, 3); got != 3 {
		t.Fatalf("pool wider than ensemble not clamped: %d", got)
	}
	if got := resolveWorkers(-2, 5); got != runtime.GOMAXPROCS(0) && got != 5 {
		t.Fatalf("negative request resolved to %d", got)
	}
	if got := resolveWorkers(1, 10); got != 1 {
		t.Fatalf("explicit sequential overridden: %d", got)
	}
}

// TestMeanNodesExact: MeanNodes comes from an integer node total, so
// it must be an exact ratio — guard against float accumulation that
// would break the bit-identical guarantee.
func TestMeanNodesExact(t *testing.T) {
	res, err := RunNoisy(algorithms.GHZ(5), NoiseModel{Depolarizing: 0.05}, 64, 2, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	scaled := res.MeanNodes * float64(res.Trajectories)
	if scaled != math.Trunc(scaled) {
		t.Fatalf("MeanNodes %v is not an exact integer ratio over %d trajectories", res.MeanNodes, res.Trajectories)
	}
}
