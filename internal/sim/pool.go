package sim

// Parallel trajectory engine: a sharded pool of independent DD engine
// replicas fanning a Monte-Carlo noise ensemble out over the cores.
//
// Both DD-simulation surveys (arXiv 2108.07027 §V, arXiv 2302.04687)
// call the one-simulation-per-shot workload embarrassingly parallel:
// every trajectory is an independent pure-state vector DD, so the
// engine needs no shared state at all. The pool exploits exactly that
// — each worker owns a full dd.Pkg replica (its own unique tables,
// compute tables, complex-number table, and slab arenas), so the hot
// paths of the storage layer (PR 2) and the gate kernel (PR 4) run
// with zero added locking. Replicas are reused across the
// trajectories a worker drains from the queue, which keeps interned
// complex values, gate descriptors, and table allocations warm — a
// measurable win over the previous engine-per-trajectory scheme even
// at one worker.
//
// Determinism is order-independent by construction:
//
//   - Every trajectory derives its private RNG stream from
//     (ensembleSeed, trajectoryIndex) through a splitmix64-style
//     mixer (TrajectorySeed) instead of sequential draws from one
//     shared RNG, so the stream does not depend on which worker runs
//     the trajectory or in what order.
//   - Merged quantities are commutative: histogram counts, error
//     events, and the node total (an integer sum, so MeanNodes is
//     exact) add up identically in any completion order.
//   - Failed trajectories do not abort the ensemble: each failure is
//     a per-index fact (same circuit, same budget, same stream), the
//     first error by trajectory index is reported, and completed
//     trajectories keep their counts — the partial-progress contract
//     of PR 1's budget frames.
//
// The result: RunNoisy returns a bit-identical *NoisyResult for every
// worker count, including 1.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// TrajectorySeed derives the RNG seed of one trajectory from the
// ensemble seed and the trajectory index with a splitmix64-style
// finalizer. Counter-based mixing — rather than sequential Int63
// draws from a master RNG — is what makes the ensemble's per-index
// streams independent of execution order and worker count.
func TrajectorySeed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// poolGCThreshold bounds replica growth between trajectories when no
// node budget is set: the worker collects its package once the unique
// tables exceed this many live nodes. Below it, garbage from earlier
// trajectories is left in place — later trajectories re-intern the
// same nodes via unique-table hits, which is the point of reuse.
const poolGCThreshold = 1 << 17

// trajectoryOutcome is the per-trajectory contribution merged into the
// ensemble result.
type trajectoryOutcome struct {
	index   int
	sample  int64 // sampled basis state (valid when err == nil)
	nodes   int   // final diagram size
	events  int   // Pauli errors injected
	err     error
}

// ensembleAccum merges trajectory outcomes; every merged quantity is
// commutative so the aggregate is independent of completion order.
type ensembleAccum struct {
	counts      map[int64]int
	errorEvents int
	totalNodes  int
	completed   int
	failed      int
	firstErr    error
	firstErrIdx int
}

func (a *ensembleAccum) add(o trajectoryOutcome) {
	if o.err != nil {
		a.failed++
		if a.firstErr == nil || o.index < a.firstErrIdx {
			a.firstErr = o.err
			a.firstErrIdx = o.index
		}
		return
	}
	a.counts[o.sample]++
	a.errorEvents += o.events
	a.totalNodes += o.nodes
	a.completed++
}

// merge folds another accumulator (one worker's share) into a.
func (a *ensembleAccum) merge(b *ensembleAccum) {
	for k, v := range b.counts {
		a.counts[k] += v
	}
	a.errorEvents += b.errorEvents
	a.totalNodes += b.totalNodes
	a.completed += b.completed
	a.failed += b.failed
	if b.firstErr != nil && (a.firstErr == nil || b.firstErrIdx < a.firstErrIdx) {
		a.firstErr = b.firstErr
		a.firstErrIdx = b.firstErrIdx
	}
}

// resolveWorkers clamps the requested pool width to something useful:
// the default tracks the machine, and a pool never outnumbers its
// trajectories.
func resolveWorkers(requested, trajectories int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > trajectories {
		w = trajectories
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PoolWidth reports the worker-pool width RunNoisy would use for the
// given request, exposing the clamp logic to health probes: a probe
// asserting "the trajectory pool can still fan out" checks that a
// nominal request resolves to at least one worker.
func PoolWidth(requested, trajectories int) int {
	if trajectories < 1 {
		trajectories = 1
	}
	return resolveWorkers(requested, trajectories)
}

// RunNoisyCtx is RunNoisy under a context: cancellation (a
// disconnected client, a request deadline) stops the remaining
// trajectories and returns the partial result for the completed ones
// together with the context's error. All pool goroutines have exited
// by the time it returns.
func RunNoisyCtx(ctx context.Context, circ *qc.Circuit, model NoiseModel, trajectories int, seed int64, opts ...Option) (*NoisyResult, error) {
	if err := model.validate(); err != nil {
		return nil, err
	}
	if trajectories <= 0 {
		return nil, fmt.Errorf("sim: need at least one trajectory")
	}
	// A probe simulator resolves the ensemble options (workers,
	// observer, budget); its engine is handed to worker 0 so the
	// allocation is not wasted.
	probe := New(circ, opts...)
	workers := resolveWorkers(probe.workers, trajectories)
	observer := probe.trajObserver
	probe.release()

	acc := &ensembleAccum{counts: make(map[int64]int)}
	if workers == 1 {
		// Sequential path: drain indices in order on the caller's
		// goroutine — no channels, no goroutines, same math.
		for tr := 0; tr < trajectories; tr++ {
			if ctx.Err() != nil {
				break
			}
			acc.add(runOneTrajectory(ctx, probe.pkg, circ, model, tr, seed, opts, observer))
			maintainReplica(probe.pkg)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		partials := make([]*ensembleAccum, workers)
		for w := 0; w < workers; w++ {
			pkg := probe.pkg
			if w > 0 {
				pkg = dd.New(circ.NQubits)
			}
			part := &ensembleAccum{counts: make(map[int64]int)}
			partials[w] = part
			wg.Add(1)
			go func(pkg *dd.Pkg) {
				defer wg.Done()
				for tr := range jobs {
					part.add(runOneTrajectory(ctx, pkg, circ, model, tr, seed, opts, observer))
					maintainReplica(pkg)
				}
			}(pkg)
		}
	feed:
		for tr := 0; tr < trajectories; tr++ {
			select {
			case jobs <- tr:
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		for _, part := range partials {
			acc.merge(part)
		}
	}

	res := &NoisyResult{
		Trajectories: acc.completed,
		Requested:    trajectories,
		Failed:       acc.failed,
		Workers:      workers,
		Counts:       acc.counts,
		ErrorEvents:  acc.errorEvents,
	}
	if acc.completed > 0 {
		res.MeanNodes = float64(acc.totalNodes) / float64(acc.completed)
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("sim: ensemble interrupted after %d/%d trajectories: %w", acc.completed, trajectories, err)
	}
	if acc.firstErr != nil {
		return res, fmt.Errorf("sim: trajectory %d: %w", acc.firstErrIdx, acc.firstErr)
	}
	return res, nil
}

// maintainReplica keeps a reused engine healthy between trajectories.
// With a node budget set, it collects after every trajectory so each
// one starts from the same live-node count — that is what makes
// budget verdicts a per-index fact independent of scheduling. Without
// a budget it collects only past poolGCThreshold, preserving the
// warm-table sharing between similar trajectories.
func maintainReplica(p *dd.Pkg) {
	if p.MaxNodes() > 0 {
		p.GarbageCollect()
		return
	}
	p.MaybeGC(poolGCThreshold)
}

// runOneTrajectory simulates trajectory index tr on the worker's
// engine replica: every random draw (measurement outcomes, Pauli
// error sampling, the final basis-state sample) comes from the
// trajectory's private counter-derived stream.
func runOneTrajectory(ctx context.Context, pkg *dd.Pkg, circ *qc.Circuit, model NoiseModel, tr int, seed int64, opts []Option, observer func(float64)) (out trajectoryOutcome) {
	out.index = tr
	start := time.Now()
	rng := rand.New(rand.NewSource(TrajectorySeed(seed, tr)))
	s := newOn(pkg, circ, opts...)
	defer s.release()
	// Errors are injected per original gate op, so fusion must not
	// fold ops together; the trajectory stream replaces any seed the
	// caller's options installed.
	s.fusion = false
	s.rng = rng
	noiseless := model.IsZero()
	for !s.AtEnd() {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		op := &circ.Ops[s.Pos()]
		if _, err := s.StepForward(); err != nil {
			out.err = err
			return out
		}
		if op.Kind != qc.KindGate || noiseless {
			continue
		}
		// Inject sampled Pauli errors on the touched qubits.
		for _, q := range op.Targets {
			if err := injectSampledError(s, rng, model, q, &out); err != nil {
				return out
			}
		}
		for _, ctl := range op.Controls {
			if err := injectSampledError(s, rng, model, ctl.Qubit, &out); err != nil {
				return out
			}
		}
	}
	out.sample = dd.Sample(s.State(), rng)
	out.nodes = dd.SizeV(s.State())
	if observer != nil {
		observer(time.Since(start).Seconds())
	}
	return out
}

// injectSampledError draws one error gate for qubit q and applies it,
// recording the event on the outcome. A non-nil return means the
// trajectory is over (budget exhaustion on the injected gate).
func injectSampledError(s *Simulator, rng *rand.Rand, model NoiseModel, q int, out *trajectoryOutcome) error {
	g := samplePauli(rng, model)
	if g == qc.GateNone {
		return nil
	}
	out.events++
	if err := s.injectGate(g, q); err != nil {
		out.err = err
		return err
	}
	return nil
}

// IsPartial reports whether the result covers fewer trajectories than
// requested (budget exhaustion or cancellation trimmed the ensemble).
func (r *NoisyResult) IsPartial() bool { return r.Trajectories < r.Requested }
