package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// randUnitaryCircuit builds a random measurement-free circuit mixing
// Clifford+T gates, controlled rotations (multi-controlled, positive
// and negative polarity) and Swaps — the gate families the kernel and
// the generic path must agree on.
func randUnitaryCircuit(rng *rand.Rand, n, ops int) *qc.Circuit {
	c := qc.New(n, 0)
	single := []qc.Gate{qc.X, qc.Y, qc.Z, qc.H, qc.S, qc.Sdg, qc.T, qc.Tdg}
	rot := []qc.Gate{qc.RX, qc.RY, qc.RZ, qc.P}
	for len(c.Ops) < ops {
		switch rng.Intn(4) {
		case 0: // plain Clifford+T
			c.Gate(single[rng.Intn(len(single))], nil, rng.Intn(n))
		case 1: // parameterized rotation
			c.Gate(rot[rng.Intn(len(rot))], []float64{rng.Float64() * 2 * math.Pi}, rng.Intn(n))
		case 2: // controlled gate (1–2 controls, mixed polarity)
			if n < 2 {
				continue
			}
			perm := rng.Perm(n)
			target := perm[0]
			k := 1 + rng.Intn(2)
			if k > n-1 {
				k = n - 1
			}
			ctl := make([]qc.Control, k)
			for i := 0; i < k; i++ {
				ctl[i] = qc.Control{Qubit: perm[1+i], Neg: rng.Intn(2) == 1}
			}
			g := rot[rng.Intn(len(rot))]
			c.Gate(g, []float64{rng.Float64() * 2 * math.Pi}, target, ctl...)
		default: // Swap exercises the generic fallback inside the kernel path
			if n < 2 {
				continue
			}
			perm := rng.Perm(n)
			c.SwapGate(perm[0], perm[1])
		}
	}
	return c
}

// TestKernelMatchesGenericRandomCircuits runs random circuits once
// through the ApplyGate kernel and once through the generic
// MakeGateDD+MultMV oracle and requires identical final amplitudes.
func TestKernelMatchesGenericRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 10; n++ {
		for trial := 0; trial < 3; trial++ {
			circ := randUnitaryCircuit(rng, n, 20)
			fast := New(circ)
			if _, err := fast.RunToEnd(); err != nil {
				t.Fatalf("n=%d trial=%d kernel run: %v", n, trial, err)
			}
			slow := New(circ, WithGenericApply())
			if _, err := slow.RunToEnd(); err != nil {
				t.Fatalf("n=%d trial=%d generic run: %v", n, trial, err)
			}
			a, b := fast.Amplitudes(), slow.Amplitudes()
			for i := range a {
				if d := a[i] - b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
					t.Fatalf("n=%d trial=%d amplitude %d differs: kernel %v generic %v", n, trial, i, a[i], b[i])
				}
			}
		}
	}
}

// fusionCircuit has two runs of adjacent single-qubit gates on the
// same target separated by an entangling gate — the shape the peephole
// pass must fold without changing semantics.
func fusionCircuit() *qc.Circuit {
	c := qc.New(3, 0)
	c.H(0)
	c.Gate(qc.RY, []float64{0.7}, 2)
	c.Gate(qc.RZ, []float64{1.1}, 2)
	c.T(2)
	c.CX(0, 1)
	c.Gate(qc.RX, []float64{0.3}, 1)
	c.H(1)
	c.Z(2)
	return c
}

// TestFusionPreservesState: with fusion on, the final state matches
// the unfused run exactly and the package counts the folded gates.
func TestFusionPreservesState(t *testing.T) {
	circ := fusionCircuit()
	plain := New(circ)
	if _, err := plain.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	fused := New(circ, WithFusion())
	events, err := fused.RunToEnd()
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.Amplitudes(), fused.Amplitudes()
	for i := range a {
		if d := a[i] - b[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatalf("amplitude %d differs with fusion: %v vs %v", i, a[i], b[i])
		}
	}
	st := fused.Pkg().Stats()
	if st.GatesFused == 0 {
		t.Fatal("fusion enabled but GatesFused stayed zero")
	}
	totalFused := 0
	for _, ev := range events {
		totalFused += ev.Fused
	}
	if uint64(totalFused) != st.GatesFused {
		t.Fatalf("events report %d fused gates, stats %d", totalFused, st.GatesFused)
	}
	// The q2 run (ry, rz, t) folds into one step: 8 ops, 3 saved.
	if st.GatesFused != 3 {
		t.Fatalf("GatesFused = %d, want 3 (ry+rz+t run and rx+h run)", st.GatesFused)
	}
}

// TestFusionStepSemantics: a fused run advances Pos past the whole run
// in one StepForward and StepBackward rewinds it atomically.
func TestFusionStepSemantics(t *testing.T) {
	circ := fusionCircuit()
	s := New(circ, WithFusion())
	ev, err := s.StepForward() // h q0 — no fusable successor on q0
	if err != nil || ev.Fused != 0 || s.Pos() != 1 {
		t.Fatalf("step 1: err=%v fused=%d pos=%d", err, ev.Fused, s.Pos())
	}
	before := s.Amplitudes()
	ev, err = s.StepForward() // ry,rz,t on q2 fold into one step
	if err != nil {
		t.Fatal(err)
	}
	if ev.Fused != 2 || s.Pos() != 4 {
		t.Fatalf("fused step: fused=%d pos=%d, want 2 and 4", ev.Fused, s.Pos())
	}
	if !s.StepBackward() {
		t.Fatal("StepBackward failed")
	}
	if s.Pos() != 1 {
		t.Fatalf("backward over fused run left pos=%d, want 1", s.Pos())
	}
	after := s.Amplitudes()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("amplitude %d not restored: %v vs %v", i, before[i], after[i])
		}
	}
	// Stepping forward again replays the fused run identically.
	ev, err = s.StepForward()
	if err != nil || ev.Fused != 2 || s.Pos() != 4 {
		t.Fatalf("replayed fused step: err=%v fused=%d pos=%d", err, ev.Fused, s.Pos())
	}
}

// TestNoiseRespectsBudget is the regression test for the unchecked
// MultMV that used to sit on the noise-injection path: an injected
// error on a state already at the SetMaxNodes cap must surface
// dd.ErrResourceExhausted instead of silently growing the tables.
func TestNoiseRespectsBudget(t *testing.T) {
	// Build a state of nontrivial size without any budget…
	circ := algorithms.QFTCompiled(8)
	s := New(circ)
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	// …then arm a budget below the live table size: the injection path
	// must refuse, exactly like a circuit gate would.
	s.Pkg().SetMaxNodes(2)
	err := s.injectGate(qc.H, 0)
	if err == nil {
		t.Fatal("injectGate ignored the node budget")
	}
	if !errors.Is(err, dd.ErrResourceExhausted) {
		t.Fatalf("injectGate error %v does not match dd.ErrResourceExhausted", err)
	}
}

// TestRunNoisyPropagatesBudget: the trajectory driver surfaces a
// budget exhaustion from inside a noisy run as an error.
func TestRunNoisyPropagatesBudget(t *testing.T) {
	circ := algorithms.QFTCompiled(8)
	_, err := RunNoisy(circ, NoiseModel{Depolarizing: 1}, 3, 11, WithMaxNodes(8))
	if err == nil {
		t.Fatal("RunNoisy finished under an impossible node budget")
	}
	if !errors.Is(err, dd.ErrResourceExhausted) {
		t.Fatalf("RunNoisy error %v does not match dd.ErrResourceExhausted", err)
	}
}

// TestRunNoisyKernelMatchesGeneric: identical seeds must yield
// identical trajectory ensembles on both gate-application paths (the
// sampled Pauli sequence only depends on the rng, and each pure-state
// trajectory is canonical).
func TestRunNoisyKernelMatchesGeneric(t *testing.T) {
	circ := algorithms.GHZ(4)
	a, err := RunNoisy(circ, NoiseModel{Depolarizing: 0.05, BitFlip: 0.02}, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNoisy(circ, NoiseModel{Depolarizing: 0.05, BitFlip: 0.02}, 200, 13, WithGenericApply())
	if err != nil {
		t.Fatal(err)
	}
	if a.ErrorEvents != b.ErrorEvents {
		t.Fatalf("error events differ: kernel %d generic %d", a.ErrorEvents, b.ErrorEvents)
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatalf("count maps differ: %v vs %v", a.Counts, b.Counts)
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("counts for %b differ: kernel %d generic %d", k, v, b.Counts[k])
		}
	}
}
