package sim

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/linalg"
	"quantumdd/internal/qc"
)

const tol = 1e-9

// TestBellWalkthrough reproduces the simulation walk-through of
// Fig. 8: |00⟩ → (H⊗I) → CNOT → measure q0 = 1 → |11⟩.
func TestBellWalkthrough(t *testing.T) {
	circ := algorithms.BellMeasured()
	s := New(circ, WithChooser(func(op *qc.Op, q int, p0, p1 float64) int {
		// The user clicks |1⟩ in the dialog (Fig. 8(c)).
		return 1
	}))
	// Step 1: H.
	ev, err := s.StepForward()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventGate {
		t.Fatalf("event 1 kind = %v", ev.Kind)
	}
	amps := s.Amplitudes()
	if cmplx.Abs(amps[0]-complex(1/math.Sqrt2, 0)) > tol || cmplx.Abs(amps[2]-complex(1/math.Sqrt2, 0)) > tol {
		t.Fatalf("after H: %v, want 1/sqrt2 [1,0,1,0] (Ex. 3)", amps)
	}
	// Step 2: CNOT → Bell state (Fig. 8(b)).
	if _, err := s.StepForward(); err != nil {
		t.Fatal(err)
	}
	amps = s.Amplitudes()
	if cmplx.Abs(amps[0]-complex(1/math.Sqrt2, 0)) > tol || cmplx.Abs(amps[3]-complex(1/math.Sqrt2, 0)) > tol {
		t.Fatalf("after CNOT: %v, want Bell state", amps)
	}
	if n := dd.SizeV(s.State()); n != 3 {
		t.Fatalf("Bell DD has %d nodes, want 3", n)
	}
	// Step 3: measure q0; dialog reports 50/50, chooser picks 1.
	ev, err = s.StepForward()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventMeasure || ev.Outcome != 1 {
		t.Fatalf("measure event wrong: %+v", ev)
	}
	if math.Abs(ev.P0-0.5) > tol || math.Abs(ev.P1-0.5) > tol {
		t.Fatalf("dialog probabilities %v/%v, want 0.5/0.5", ev.P0, ev.P1)
	}
	// Entanglement: q1 now deterministically 1 (Fig. 8(d)).
	ev, err = s.StepForward()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventMeasure || ev.Outcome != 1 {
		t.Fatalf("second measurement should be deterministic 1: %+v", ev)
	}
	amps = s.Amplitudes()
	if cmplx.Abs(amps[3]-1) > tol {
		t.Fatalf("final state %v, want |11>", amps)
	}
	if got := s.Classical(); got[0] != 1 || got[1] != 1 {
		t.Fatalf("classical bits %v, want [1 1]", got)
	}
}

func TestStepBackwardRestoresNonUnitary(t *testing.T) {
	circ := algorithms.BellMeasured()
	s := New(circ, WithChooser(func(op *qc.Op, q int, p0, p1 float64) int { return 0 }))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if s.Classical()[0] != 0 {
		t.Fatal("setup failed")
	}
	// Undo both measurements: superposition and classical bits return.
	if !s.StepBackward() || !s.StepBackward() {
		t.Fatal("backward step refused")
	}
	if got := s.Classical(); got[0] != -1 || got[1] != -1 {
		t.Fatalf("classical bits not restored: %v", got)
	}
	p1 := s.ProbOne(0)
	if math.Abs(p1-0.5) > tol {
		t.Fatalf("superposition not restored, P(q0=1) = %v", p1)
	}
	// Rewind to start.
	s.Rewind()
	if !s.AtStart() {
		t.Fatal("rewind did not reach start")
	}
	amps := s.Amplitudes()
	if cmplx.Abs(amps[0]-1) > tol {
		t.Fatalf("initial state not restored: %v", amps)
	}
}

func TestRunToBreakStopsAtSpecials(t *testing.T) {
	c := qc.New(2, 1)
	c.H(0).Barrier().X(1).Measure(0, 0).H(1)
	s := New(c, WithSeed(7))
	// First: run to the barrier (2 events: H, barrier).
	evs, err := s.RunToBreak()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Kind != EventBarrier {
		t.Fatalf("first break: %+v", evs)
	}
	// Second: X then measure.
	evs, err = s.RunToBreak()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Kind != EventMeasure {
		t.Fatalf("second break: %+v", evs)
	}
	// Third: the tail.
	evs, err = s.RunToBreak()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != EventGate {
		t.Fatalf("tail: %+v", evs)
	}
	if !s.AtEnd() {
		t.Fatal("not at end")
	}
	// Stepping past the end is a no-op event.
	ev, err := s.StepForward()
	if err != nil || ev.Kind != EventEnd {
		t.Fatalf("past-end step: %+v, %v", ev, err)
	}
}

func TestDeterministicMeasurementSkipsDialog(t *testing.T) {
	c := qc.New(1, 1)
	c.X(0).Measure(0, 0)
	dialogCalled := false
	s := New(c, WithChooser(func(op *qc.Op, q int, p0, p1 float64) int {
		dialogCalled = true
		return 0
	}))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if dialogCalled {
		t.Fatal("dialog opened for a deterministic measurement")
	}
	if s.Classical()[0] != 1 {
		t.Fatalf("X|0> measured as %d, want 1", s.Classical()[0])
	}
}

func TestResetSemantics(t *testing.T) {
	// Prepare |+>, reset → |0> regardless of the sampled branch.
	c := qc.New(1, 0)
	c.H(0).Reset(0)
	for seed := int64(0); seed < 10; seed++ {
		s := New(c, WithSeed(seed))
		evs, err := s.RunToEnd()
		if err != nil {
			t.Fatal(err)
		}
		last := evs[len(evs)-1]
		if last.Kind != EventReset {
			t.Fatalf("last event kind %v", last.Kind)
		}
		if math.Abs(last.P0-0.5) > tol {
			t.Fatalf("reset dialog probabilities wrong: %v", last.P0)
		}
		amps := s.Amplitudes()
		if math.Abs(cmplx.Abs(amps[0])-1) > tol {
			t.Fatalf("seed %d: post-reset state %v, want |0>", seed, amps)
		}
	}
}

func TestClassicalControl(t *testing.T) {
	// measure |1> into c, then conditionally flip q1.
	c := qc.New(2, 1)
	c.X(0).Measure(0, 0)
	c.GateIf(qc.X, nil, 1, []int{0}, 1)
	s := New(c, WithSeed(1))
	evs, err := s.RunToEnd()
	if err != nil {
		t.Fatal(err)
	}
	if evs[len(evs)-1].Kind != EventCondApply {
		t.Fatalf("conditional should fire: %+v", evs[len(evs)-1])
	}
	amps := s.Amplitudes()
	if cmplx.Abs(amps[3]-1) > tol {
		t.Fatalf("state %v, want |11>", amps)
	}
	// Condition not met → skip.
	c2 := qc.New(2, 1)
	c2.Measure(0, 0)
	c2.GateIf(qc.X, nil, 1, []int{0}, 1)
	s2 := New(c2, WithSeed(1))
	evs, err = s2.RunToEnd()
	if err != nil {
		t.Fatal(err)
	}
	if evs[len(evs)-1].Kind != EventCondSkip {
		t.Fatalf("conditional should skip: %+v", evs[len(evs)-1])
	}
}

// TestTeleportation: for a sample of payload states, Bob's qubit ends
// in Alice's input state for every measurement outcome (E10).
func TestTeleportation(t *testing.T) {
	angles := []struct{ theta, phi float64 }{
		{0, 0}, {math.Pi, 0}, {math.Pi / 3, math.Pi / 5}, {2.1, -0.7},
	}
	for _, a := range angles {
		for seed := int64(0); seed < 8; seed++ {
			circ := algorithms.Teleport(a.theta, a.phi)
			s := New(circ, WithSeed(seed))
			if _, err := s.RunToEnd(); err != nil {
				t.Fatal(err)
			}
			amps := s.Amplitudes()
			// Bob's qubit is q0. Marginalize: the final state is
			// |q2 q1⟩ ⊗ |ψ⟩ with q2,q1 collapsed, so amplitudes are
			// concentrated on two adjacent indices.
			u := qc.Matrix2(qc.U, []float64{a.theta, a.phi, 0})
			want0, want1 := u[0], u[2] // U|0> = [u00, u10]
			var got0, got1 complex128
			for idx, amp := range amps {
				if cmplx.Abs(amp) < 1e-12 {
					continue
				}
				if idx&1 == 0 {
					got0 = amp
				} else {
					got1 = amp
				}
			}
			// Compare up to global phase.
			ip := cmplx.Conj(got0)*want0 + cmplx.Conj(got1)*want1
			if math.Abs(cmplx.Abs(ip)-1) > 1e-6 {
				t.Fatalf("teleport(θ=%v,φ=%v,seed=%d): Bob fidelity |<ψ|φ>| = %v", a.theta, a.phi, seed, cmplx.Abs(ip))
			}
		}
	}
}

func TestSimAgainstDenseBaseline(t *testing.T) {
	// Random unitary circuits: DD simulation must match the dense
	// state-vector simulator exactly.
	for seed := int64(1); seed <= 5; seed++ {
		circ := algorithms.RandomCircuit(4, 3, seed)
		s := New(circ)
		if _, err := s.RunToEnd(); err != nil {
			t.Fatal(err)
		}
		got := s.Amplitudes()
		want := denseSimulate(circ)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("seed %d amplitude %d: dd %v vs dense %v", seed, i, got[i], want[i])
			}
		}
	}
}

func denseSimulate(c *qc.Circuit) linalg.Vector {
	v := linalg.ZeroState(c.NQubits)
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Kind != qc.KindGate {
			continue
		}
		var pos, neg []int
		for _, ctl := range op.Controls {
			if ctl.Neg {
				neg = append(neg, ctl.Qubit)
			} else {
				pos = append(pos, ctl.Qubit)
			}
		}
		if op.Gate == qc.Swap {
			a, b := op.Targets[0], op.Targets[1]
			x := qc.Matrix2(qc.X, nil)
			linalg.ApplyControlledGate(v, x, b, append(append([]int{}, pos...), a), neg)
			linalg.ApplyControlledGate(v, x, a, append(append([]int{}, pos...), b), neg)
			linalg.ApplyControlledGate(v, x, b, append(append([]int{}, pos...), a), neg)
			continue
		}
		linalg.ApplyControlledGate(v, qc.Matrix2(op.Gate, op.Params), op.Targets[0], pos, neg)
	}
	return v
}

func TestGHZAndWStates(t *testing.T) {
	// GHZ(5): amplitudes 1/√2 on |00000> and |11111>.
	s := New(algorithms.GHZ(5))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	amps := s.Amplitudes()
	if cmplx.Abs(amps[0]-complex(1/math.Sqrt2, 0)) > tol || cmplx.Abs(amps[31]-complex(1/math.Sqrt2, 0)) > tol {
		t.Fatalf("GHZ amplitudes wrong: %v %v", amps[0], amps[31])
	}
	// A GHZ DD needs the root plus two nodes per remaining level (the
	// all-zero and all-one continuations): 2n-1 nodes — linear in n,
	// versus the 2^n dense vector.
	if n := dd.SizeV(s.State()); n != 9 {
		t.Fatalf("GHZ(5) DD has %d nodes, want 9 = 2*5-1", n)
	}
	// W(4): amplitude 1/2 on each single-excitation basis state.
	s = New(algorithms.WState(4))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	amps = s.Amplitudes()
	for _, idx := range []int{1, 2, 4, 8} {
		if math.Abs(cmplx.Abs(amps[idx])-0.5) > 1e-9 {
			t.Fatalf("W(4) amplitude at %d = %v, want magnitude 1/2", idx, amps[idx])
		}
	}
}

func TestBernsteinVazirani(t *testing.T) {
	const n = 6
	const secret = 0b101101
	s := New(algorithms.BernsteinVazirani(n, secret), WithSeed(3))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	var got uint64
	for i, b := range s.Classical() {
		if b == 1 {
			got |= 1 << uint(i)
		}
	}
	if got != secret {
		t.Fatalf("BV recovered %06b, want %06b", got, secret)
	}
}

func TestGroverAmplifiesMarked(t *testing.T) {
	const n = 4
	const marked = 0b1010
	s := New(algorithms.Grover(n, marked))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	counts := s.Sample(400)
	if counts[marked] < 300 {
		t.Fatalf("Grover: marked state sampled %d/400 times", counts[marked])
	}
}

func TestAdder(t *testing.T) {
	// The adder acts on basis states: verify b += a on a few inputs
	// by preparing inputs with X gates.
	const n = 2
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			circ := qc.New(2*n+2, 0)
			for i := 0; i < n; i++ {
				if a>>uint(i)&1 == 1 {
					circ.X(1 + 2*i)
				}
				if b>>uint(i)&1 == 1 {
					circ.X(2 + 2*i)
				}
			}
			add := algorithms.Adder(n)
			circ.Ops = append(circ.Ops, add.Ops...)
			s := New(circ)
			if _, err := s.RunToEnd(); err != nil {
				t.Fatal(err)
			}
			amps := s.Amplitudes()
			idx := -1
			for i, amp := range amps {
				if cmplx.Abs(amp) > 0.5 {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatal("no definite output state")
			}
			sum := a + b
			gotB := idx >> 2 & 1 << 0
			gotB = (idx >> 2 & 1) | (idx>>4&1)<<1
			gotCarry := idx >> (2*n + 1) & 1
			gotSum := gotB | gotCarry<<n
			if gotSum != sum {
				t.Fatalf("adder %d+%d: got %d (state %0*b)", a, b, gotSum, 2*n+2, idx)
			}
		}
	}
}

func TestSimulatorGC(t *testing.T) {
	circ := algorithms.RandomCircuit(6, 20, 11)
	s := New(circ)
	s.GCThreshold = 64 // force frequent collections
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	// The state survives aggressive GC; compare against a fresh run.
	fresh := New(circ)
	fresh.GCThreshold = 0
	if _, err := fresh.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	a := s.Amplitudes()
	b := fresh.Amplitudes()
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("GC corrupted the state at amplitude %d", i)
		}
	}
	if s.Pkg().Stats().GCRuns == 0 {
		t.Fatal("GC never ran despite tiny threshold")
	}
}

func TestChooserValidation(t *testing.T) {
	c := qc.New(1, 1)
	c.H(0).Measure(0, 0)
	s := New(c, WithChooser(func(op *qc.Op, q int, p0, p1 float64) int { return 7 }))
	if _, err := s.RunToEnd(); err == nil {
		t.Fatal("invalid chooser outcome not rejected")
	}
}

func TestRunHelper(t *testing.T) {
	classical, final, p, err := Run(algorithms.BellMeasured(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if classical[0] != classical[1] {
		t.Fatalf("Bell measurement outcomes disagree: %v", classical)
	}
	if err := p.CheckUnitVector(final); err != nil {
		t.Fatal(err)
	}
}

func TestPeakNodes(t *testing.T) {
	// The QFT intermediate states grow and then shrink after
	// measurement-free runs; the peak must be at least the final size
	// and at least the largest intermediate.
	s := New(algorithms.QFT(6))
	if got := s.PeakNodes(); got != dd.SizeV(s.State()) {
		t.Fatalf("initial peak %d != initial size", got)
	}
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if s.PeakNodes() < dd.SizeV(s.State()) {
		t.Fatalf("peak %d below final size %d", s.PeakNodes(), dd.SizeV(s.State()))
	}
	// Collapsing shrinks the state; the peak must remember the high
	// point. An entangled 4-qubit state has ~2^n nodes; measuring all
	// qubits collapses it to a 4-node basis state.
	c := algorithms.Entangled(4, 3, 5).Clone()
	c.NClbits = 4
	for q := 0; q < 4; q++ {
		c.Measure(q, q)
	}
	s2 := New(c, WithSeed(1))
	if _, err := s2.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if s2.PeakNodes() <= dd.SizeV(s2.State()) {
		t.Fatalf("peak %d did not exceed collapsed size %d", s2.PeakNodes(), dd.SizeV(s2.State()))
	}
}

func TestApproximateSimulation(t *testing.T) {
	circ := algorithms.Entangled(10, 5, 7)
	exact := New(circ)
	if _, err := exact.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	approx := New(circ, WithApproximation(1e-4))
	if _, err := approx.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if approx.ApproxFidelity() >= 1 {
		t.Fatalf("approximation never fired (fidelity %v)", approx.ApproxFidelity())
	}
	if approx.ApproxFidelity() < 0.5 {
		t.Fatalf("approximation too destructive: %v", approx.ApproxFidelity())
	}
	if dd.SizeV(approx.State()) >= dd.SizeV(exact.State()) {
		t.Fatalf("approximation did not shrink the diagram: %d vs %d",
			dd.SizeV(approx.State()), dd.SizeV(exact.State()))
	}
	// The reported fidelity lower-bounds... (it is a product of exact
	// per-step fidelities, so compare to the true overlap loosely).
	trueFid := exact.Pkg().Fidelity(exact.State(), mustImport(t, exact.Pkg(), approx))
	if math.Abs(trueFid-approx.ApproxFidelity()) > 0.3 {
		t.Fatalf("fidelity estimate %v far from true %v", approx.ApproxFidelity(), trueFid)
	}
	// Exact mode reports fidelity 1.
	if exact.ApproxFidelity() != 1 {
		t.Fatalf("exact run fidelity %v", exact.ApproxFidelity())
	}
}

// mustImport moves a state between packages via serialization.
func mustImport(t *testing.T, p *dd.Pkg, from *Simulator) dd.VEdge {
	t.Helper()
	var buf strings.Builder
	if err := from.Pkg().WriteVector(&buf, from.State()); err != nil {
		t.Fatal(err)
	}
	e, err := p.ReadVector(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	return e
}
