package sim

import (
	"math"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// TestGHZ62Qubits simulates a 62-qubit GHZ preparation — a state whose
// dense vector (2^62 amplitudes ≈ 74 exabytes) could never be stored.
// The DD holds it in 2·62−1 nodes; this is the paper's core pitch.
func TestGHZ62Qubits(t *testing.T) {
	const n = 62
	s := New(algorithms.GHZ(n))
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if got := dd.SizeV(s.State()); got != 2*n-1 {
		t.Fatalf("GHZ(%d) DD has %d nodes, want %d", n, got, 2*n-1)
	}
	// Amplitude reconstruction still works at the extremes of the
	// index space.
	inv := 1 / math.Sqrt2
	if a := dd.Amplitude(s.State(), 0); math.Abs(real(a)-inv) > 1e-9 {
		t.Fatalf("amplitude |0…0> = %v", a)
	}
	all := int64(1)<<uint(n) - 1
	if a := dd.Amplitude(s.State(), all); math.Abs(real(a)-inv) > 1e-9 {
		t.Fatalf("amplitude |1…1> = %v", a)
	}
	if a := dd.Amplitude(s.State(), 1); a != 0 {
		t.Fatalf("amplitude |0…01> = %v, want 0", a)
	}
	// Sampling yields only the two legal outcomes.
	counts := s.Sample(200)
	for idx := range counts {
		if idx != 0 && idx != all {
			t.Fatalf("sampled impossible state %b", idx)
		}
	}
	// Entanglement works at this width: measuring qubit 61 fixes all.
	p1 := s.ProbOne(n - 1)
	if math.Abs(p1-0.5) > 1e-9 {
		t.Fatalf("P(q%d=1) = %v", n-1, p1)
	}
	collapsed, err := s.Pkg().Collapse(s.State(), n-1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Pkg().ProbOne(collapsed, 0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("entanglement broken at 62 qubits: P(q0=1) = %v", got)
	}
}

// TestWideBasisArithmetic exercises gate application on a 50-qubit
// register: local operations must stay local-cost.
func TestWideBasisArithmetic(t *testing.T) {
	const n = 50
	c := qc.New(n, 0)
	c.X(0)
	c.X(n - 1)
	c.CX(0, 25)
	c.CCX(0, n-1, 10)
	s := New(c)
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	want := int64(1) | 1<<uint(n-1) | 1<<25 | 1<<10
	if a := dd.Amplitude(s.State(), want); math.Abs(real(a)-1) > 1e-9 {
		t.Fatalf("wide basis arithmetic wrong: amplitude at %b = %v", want, a)
	}
	if got := dd.SizeV(s.State()); got != n {
		t.Fatalf("basis state DD has %d nodes, want %d", got, n)
	}
	if got := dd.PathCount(s.State()); got != 1 {
		t.Fatalf("path count %d", got)
	}
}

// TestSuperpositionCapacity: |+>^40 has 2^40 non-zero amplitudes yet a
// 40-node diagram; PathCount must report the former without
// enumeration.
func TestSuperpositionCapacity(t *testing.T) {
	const n = 40
	c := qc.New(n, 0)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	s := New(c)
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if got := dd.SizeV(s.State()); got != n {
		t.Fatalf("|+>^%d has %d nodes", n, got)
	}
	if got := dd.PathCount(s.State()); got != 1<<uint(n) {
		t.Fatalf("path count = %d, want 2^%d", got, n)
	}
}
