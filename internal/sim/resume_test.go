package sim

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"quantumdd/internal/dd"
	"quantumdd/internal/qasm"
	"quantumdd/internal/qc"
)

const resumeSrc = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
t q[2];
cx q[1],q[2];
h q[2];
measure q[0] -> c[0];
x q[1];
`

func parseResume(t *testing.T) *qc.Circuit {
	t.Helper()
	c, err := qasm.Parse(resumeSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return c
}

// TestResumeContinuesIdentically runs a circuit halfway, snapshots the
// state through the binary codec, resumes a second simulator from it,
// and checks both finish with identical amplitudes, classical bits,
// and — because the codec is bit-exact — identical re-encodings.
func TestResumeContinuesIdentically(t *testing.T) {
	circ := parseResume(t)
	orig := New(circ, WithSeed(5))
	for i := 0; i < 5; i++ {
		if _, err := orig.StepForward(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	blob := orig.Pkg().AppendVectorBinary(nil, orig.State())

	res, err := Resume(circ, orig.Pos(), orig.Classical(), orig.PeakNodes(),
		func(p *dd.Pkg) (dd.VEdge, error) { return p.DecodeVectorBinary(blob) },
		WithSeed(5))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if res.Pos() != orig.Pos() {
		t.Fatalf("resumed pos %d, want %d", res.Pos(), orig.Pos())
	}
	// Bit-identical restore: re-encoding the resumed state must equal
	// the snapshot byte for byte.
	if got := res.Pkg().AppendVectorBinary(nil, res.State()); string(got) != string(blob) {
		t.Fatal("resumed state re-encodes differently")
	}
	if res.StepBackward() {
		t.Fatal("StepBackward across the restore point must report false")
	}

	if _, err := orig.RunToEnd(); err != nil {
		t.Fatalf("orig RunToEnd: %v", err)
	}
	if _, err := res.RunToEnd(); err != nil {
		t.Fatalf("resumed RunToEnd: %v", err)
	}
	a, b := orig.Amplitudes(), res.Amplitudes()
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("amplitude %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	oc, rc := orig.Classical(), res.Classical()
	for i := range oc {
		if oc[i] != rc[i] {
			t.Fatalf("classical bit %d differs: %d vs %d", i, oc[i], rc[i])
		}
	}
}

// TestResumeValidates rejects inconsistent durable state instead of
// trusting it.
func TestResumeValidates(t *testing.T) {
	circ := parseResume(t)
	okState := func(p *dd.Pkg) (dd.VEdge, error) { return p.ZeroState(), nil }

	if _, err := Resume(circ, -1, make([]int, 3), 0, okState); err == nil {
		t.Fatal("negative position accepted")
	}
	if _, err := Resume(circ, len(circ.Ops)+1, make([]int, 3), 0, okState); err == nil {
		t.Fatal("past-the-end position accepted")
	}
	if _, err := Resume(circ, 0, make([]int, 2), 0, okState); err == nil {
		t.Fatal("wrong classical register size accepted")
	}
	if _, err := Resume(circ, 0, []int{0, 1, 7}, 0, okState); err == nil {
		t.Fatal("invalid classical value accepted")
	}
	if _, err := Resume(circ, 0, make([]int, 3), 0,
		func(p *dd.Pkg) (dd.VEdge, error) { return dd.VZero(), nil }); err == nil {
		t.Fatal("zero state accepted")
	}
	wantErr := errors.New("decode failed")
	if _, err := Resume(circ, 0, make([]int, 3), 0,
		func(p *dd.Pkg) (dd.VEdge, error) { return dd.VZero(), wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("restore error not propagated: %v", err)
	}
}

// TestResumeBudgetCapsDecode wires WithMaxNodes through Resume and
// checks an oversized snapshot is rejected with ErrResourceExhausted.
func TestResumeBudgetCapsDecode(t *testing.T) {
	circ := parseResume(t)
	orig := New(circ)
	for i := 0; i < 5; i++ {
		if _, err := orig.StepForward(); err != nil {
			t.Fatal(err)
		}
	}
	blob := orig.Pkg().AppendVectorBinary(nil, orig.State())
	need := dd.SizeV(orig.State())
	if need < 2 {
		t.Fatalf("state too small for the test: %d nodes", need)
	}
	_, err := Resume(circ, orig.Pos(), orig.Classical(), 0,
		func(p *dd.Pkg) (dd.VEdge, error) { return p.DecodeVectorBinary(blob) },
		WithMaxNodes(1))
	if !errors.Is(err, dd.ErrResourceExhausted) {
		t.Fatalf("got %v, want ErrResourceExhausted", err)
	}
}

// TestResumePeakNodes keeps the statistics panel continuous across a
// restore: the restored peak is the max of the stored peak and the
// restored state's size.
func TestResumePeakNodes(t *testing.T) {
	circ := parseResume(t)
	res, err := Resume(circ, 0, []int{-1, -1, -1}, 1234,
		func(p *dd.Pkg) (dd.VEdge, error) { return p.ZeroState(), nil })
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if res.PeakNodes() != 1234 {
		t.Fatalf("peak %d, want 1234", res.PeakNodes())
	}
	if math.IsNaN(res.ProbOne(0)) {
		t.Fatal("restored state unusable")
	}
}
