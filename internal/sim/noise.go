package sim

// Stochastic noise simulation by Monte-Carlo trajectories: after each
// gate, Pauli errors are sampled on the operand qubits and applied as
// extra gates, keeping every trajectory a pure state — exactly the
// technique the DD-simulation literature uses to study noisy devices
// without density matrices (each trajectory stays a cheap vector DD).

import (
	"context"
	"fmt"
	"math/rand"

	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// NoiseModel describes per-operand-qubit error channels applied after
// every gate. Probabilities are per qubit touched by the gate.
type NoiseModel struct {
	// Depolarizing applies X, Y or Z (uniformly) with this probability.
	Depolarizing float64
	// BitFlip applies X with this probability.
	BitFlip float64
	// PhaseFlip applies Z with this probability.
	PhaseFlip float64
}

// IsZero reports whether the model introduces no errors.
func (m NoiseModel) IsZero() bool {
	return m.Depolarizing == 0 && m.BitFlip == 0 && m.PhaseFlip == 0
}

func (m NoiseModel) validate() error {
	for _, p := range []float64{m.Depolarizing, m.BitFlip, m.PhaseFlip} {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: noise probability %v out of [0,1]", p)
		}
	}
	if m.Depolarizing+m.BitFlip+m.PhaseFlip > 1 {
		return fmt.Errorf("sim: combined noise probability exceeds 1")
	}
	return nil
}

// NoisyResult aggregates a trajectory ensemble. For a fixed ensemble
// seed it is bit-identical across worker counts and scheduling orders
// (see pool.go).
type NoisyResult struct {
	// Trajectories counts the trajectories that ran to completion;
	// it equals Requested unless budget exhaustion or cancellation
	// trimmed the ensemble (see Failed and IsPartial).
	Trajectories int
	// Requested is the ensemble size the caller asked for.
	Requested int
	// Failed counts trajectories aborted by the node budget or by
	// context cancellation; their samples and error events are not
	// part of the aggregate.
	Failed int
	// Workers is the pool width the ensemble actually used.
	Workers int
	// Counts tallies the sampled basis state of the full register at
	// the end of each completed trajectory.
	Counts map[int64]int
	// ErrorEvents counts the Pauli errors injected across the
	// completed trajectories.
	ErrorEvents int
	// MeanNodes is the average final diagram size per completed
	// trajectory (0 when none completed).
	MeanNodes float64
}

// RunNoisy simulates the circuit trajectories times under the noise
// model and aggregates end-of-circuit samples. Measurements inside the
// circuit are sampled per trajectory (no dialogs). Extra options apply
// to every trajectory simulator (e.g. WithMaxNodes); fusion is forced
// off because errors are injected per original gate op.
//
// Trajectories are fanned out over a pool of independent DD engine
// replicas (WithWorkers; default GOMAXPROCS). Each trajectory's
// random stream derives from (seed, trajectoryIndex) via a
// counter-based mixer, so the result is bit-identical for every
// worker count. When individual trajectories exhaust the node budget,
// the completed trajectories' aggregate is returned alongside an
// error matching dd.ErrResourceExhausted instead of discarding the
// ensemble.
func RunNoisy(circ *qc.Circuit, model NoiseModel, trajectories int, seed int64, opts ...Option) (*NoisyResult, error) {
	return RunNoisyCtx(context.Background(), circ, model, trajectories, seed, opts...)
}

// samplePauli draws an error gate (or GateNone) from the model.
func samplePauli(rng *rand.Rand, m NoiseModel) qc.Gate {
	r := rng.Float64()
	if r < m.Depolarizing {
		return []qc.Gate{qc.X, qc.Y, qc.Z}[rng.Intn(3)]
	}
	r -= m.Depolarizing
	if r < m.BitFlip {
		return qc.X
	}
	r -= m.BitFlip
	if r < m.PhaseFlip {
		return qc.Z
	}
	return qc.GateNone
}

// injectGate applies a gate to the current state without recording it
// in the step history (errors are not user operations; stepping
// backward replays the trajectory without them). It goes through the
// checked paths so an injected error respects the same SetMaxNodes
// budget as the circuit's own gates.
func (s *Simulator) injectGate(g qc.Gate, q int) error {
	var next dd.VEdge
	var err error
	if s.generic {
		m := s.pkg.MakeGateDD(dd.GateMatrix(qc.Matrix2(g, nil)), q)
		next, err = s.pkg.MultMVChecked(m, s.state)
	} else {
		next, err = s.pkg.ApplyGateChecked(s.state, dd.GateMatrix(qc.Matrix2(g, nil)), q)
	}
	if err != nil {
		return err
	}
	s.setState(next)
	return nil
}
