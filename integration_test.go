package quantumdd_test

// End-to-end integration tests over the shipped testdata circuits:
// files are loaded from disk exactly as a user would load them into
// the tool, simulated on decision diagrams, verified against reference
// constructions, and rendered.

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/sim"
	"quantumdd/internal/verify"
	"quantumdd/internal/vis"
)

func TestGrover3FromDisk(t *testing.T) {
	circ, err := core.LoadCircuitFile(filepath.Join("testdata", "grover3.qasm"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Across seeds, the marked element |101⟩ dominates.
	hits := 0
	for seed := int64(0); seed < 20; seed++ {
		s := sim.New(circ, sim.WithSeed(seed))
		if _, err := s.RunToEnd(); err != nil {
			t.Fatal(err)
		}
		bits := s.Classical()
		if bits[0] == 1 && bits[1] == 0 && bits[2] == 1 {
			hits++
		}
	}
	if hits < 17 {
		t.Fatalf("Grover from disk found |101> only %d/20 times", hits)
	}
}

func TestTeleportFromDisk(t *testing.T) {
	circ, err := core.LoadCircuitFile(filepath.Join("testdata", "teleport.qasm"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Bob's qubit q0 must carry the payload u3(1.047…, 0.628…, 0)|0⟩
	// for every seed: P(q0=1) = sin²(θ/2) with θ = 1.0471…
	want := math.Sin(1.0471975511965976/2) * math.Sin(1.0471975511965976/2)
	for seed := int64(0); seed < 10; seed++ {
		s := sim.New(circ, sim.WithSeed(seed))
		if _, err := s.RunToEnd(); err != nil {
			t.Fatal(err)
		}
		if got := s.ProbOne(0); math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: P(Bob=1) = %v, want %v", seed, got, want)
		}
	}
}

func TestToffoliChainFromDisk(t *testing.T) {
	circ, err := core.LoadCircuitFile(filepath.Join("testdata", "toffoli_chain.real"), "")
	if err != nil {
		t.Fatal(err)
	}
	// The palindromic cascade mostly undoes itself; the expected output
	// basis state comes from an independent classical truth-table pass.
	s := sim.New(circ)
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	amps := s.Amplitudes()
	idx := -1
	for i, a := range amps {
		if real(a) > 0.5 {
			idx = i
		}
	}
	want := toffoliChainTruth()
	if idx != want {
		t.Fatalf("toffoli chain from disk ended in |%04b>, want |%04b>", idx, want)
	}
}

// toffoliChainTruth evaluates the .real cascade classically.
func toffoliChainTruth() int {
	a, b, c, d := 0, 0, 0, 0
	a ^= 1
	b ^= a
	c ^= a & b
	d ^= a & b & c
	c ^= a & b
	b ^= a
	a ^= 1
	return a<<0 | b<<1 | c<<2 | d<<3
}

func TestQFT4WithIncludeFromDisk(t *testing.T) {
	circ, err := core.LoadCircuitFile(filepath.Join("testdata", "qft4.qasm"), "")
	if err != nil {
		t.Fatal(err)
	}
	// The on-disk QFT (using an included helper gate) is equivalent to
	// the generated QFT(4).
	res, err := verify.Check(circ, algorithms.QFT(4), verify.Proportional)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("on-disk QFT4 not equivalent to the generator")
	}
	// And it renders.
	u, _, err := core.Functionality(circ)
	if err != nil {
		t.Fatal(err)
	}
	if got := dd.SizeM(u); got != 85 {
		t.Fatalf("QFT4 functionality has %d nodes, want 85 = (4^4-1)/3", got)
	}
	svg := core.RenderOperation(u, vis.Style{Mode: vis.Colored})
	if !strings.Contains(svg, "<svg") {
		t.Fatal("render failed")
	}
}
