// Command ddvis serves the installation-free visualization web tool
// (Sec. IV of the paper): open the printed URL in a browser to load
// algorithms, step through DD-based simulation with measurement
// dialogs, and verify two circuits against each other.
//
// Usage:
//
//	ddvis [-addr :8080] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"quantumdd/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "seed for sampled measurement outcomes")
	flag.Parse()
	srv := core.NewWebTool(*seed)
	fmt.Printf("visualizing decision diagrams for quantum computing\n")
	fmt.Printf("serving on http://localhost%s\n", *addr)
	log.Fatal(srv.ListenAndServe(*addr))
}
