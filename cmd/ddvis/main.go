// Command ddvis serves the installation-free visualization web tool
// (Sec. IV of the paper): open the printed URL in a browser to load
// algorithms, step through DD-based simulation with measurement
// dialogs, and verify two circuits against each other.
//
// The server is hardened for shared deployments: request bodies,
// circuit sizes, and diagram growth are bounded, idle sessions are
// reaped, every request carries a deadline, and SIGINT/SIGTERM drain
// in-flight requests before exiting. See README "Operational limits".
//
// Usage:
//
//	ddvis [-addr :8080] [-admin-addr 127.0.0.1:8081] [-seed 1]
//	      [-max-qubits 24] [-max-ops 4096]
//	      [-max-nodes 250000] [-max-body-bytes 1048576]
//	      [-session-ttl 30m] [-max-sessions 256] [-request-timeout 15s]
//	      [-noisy-workers 0]
//	      [-trace-spans 1024] [-shape-interval 0]
//	      [-spill-dir /var/lib/ddvis/spill] [-spill-max-bytes 67108864]
//	      [-sample-interval 5s] [-sample-retention 0] [-live-stream]
//
// With -spill-dir set, sessions evicted by the idle TTL or the LRU cap
// are spilled to disk as checksummed snapshots and transparently
// restored on their next request instead of answering 410 Gone; see
// README "Durability & recovery".
//
// With -sample-interval > 0 (the default), an in-process time-series
// store sweeps every metric plus per-session resource accounts on
// each tick, powering /readyz SLO burn detection, the watchdog, the
// /debug/live SSE stream, and /debug/sessions/top; see README "Live
// telemetry & health".
//
// With profiling enabled (the default; -shape-interval -1 disables),
// every session's DD engine publishes a structural shape profile each
// N executed steps: per-level node occupancy, sharing factor, and
// identity-padding fraction feed the dd_shape_* metric families, the
// per-session timelines behind GET /debug/sessions/{id}/shape, and
// the node-blowup watchdog rule; see README "Diagram structure
// profiling".
//
// When -admin-addr is set, a second listener serves the operational
// endpoints (/healthz, /readyz, /metrics, /debug/vars, /debug/pprof/…,
// /debug/sessions/top, and the one-shot /debug/bundle tar.gz) so
// profiling never rides on the public port; bind it to localhost or a
// cluster-internal interface. /metrics is also served on the public
// listener either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"quantumdd/internal/core"
	"quantumdd/internal/obs"
	"quantumdd/internal/web"
)

func main() {
	def := web.DefaultConfig()
	addr := flag.String("addr", ":8080", "listen address")
	adminAddr := flag.String("admin-addr", "", "optional admin listener for /metrics, /healthz, /debug/pprof and /debug/vars (empty = disabled)")
	seed := flag.Int64("seed", def.Seed, "seed for sampled measurement outcomes")
	maxQubits := flag.Int("max-qubits", def.MaxQubits, "reject circuits wider than this many qubits (0 = unlimited)")
	maxOps := flag.Int("max-ops", def.MaxOps, "reject circuits with more operations than this (0 = unlimited)")
	maxNodes := flag.Int("max-nodes", def.MaxNodes, "per-session decision-diagram node budget (0 = unlimited)")
	maxBody := flag.Int64("max-body-bytes", def.MaxBodyBytes, "maximum request body size in bytes (0 = unlimited)")
	sessionTTL := flag.Duration("session-ttl", def.SessionTTL, "evict sessions idle longer than this (0 = never)")
	maxSessions := flag.Int("max-sessions", def.MaxSessions, "LRU cap on live sessions per kind (0 = unlimited)")
	reqTimeout := flag.Duration("request-timeout", def.RequestTimeout, "per-request deadline, bounds fast-forward loops (0 = none)")
	noisyWorkers := flag.Int("noisy-workers", def.NoisyWorkers, "trajectory pool width for /api/noisy ensembles (0 = GOMAXPROCS, 1 = sequential; results are bit-identical either way)")
	traceSpans := flag.Int("trace-spans", def.TraceSpans, "per-session flight-recorder capacity in spans (0 = default, negative = disable tracing)")
	shapeInterval := flag.Int("shape-interval", def.ShapeInterval, "structural shape-profiling stride in session steps (0 = default 32, negative = disable profiling)")
	spillDir := flag.String("spill-dir", "", "directory for durable session snapshots; evicted sessions spill here and are transparently restored on their next request (empty = disabled)")
	spillMaxBytes := flag.Int64("spill-max-bytes", 0, "byte cap on the spill directory, oldest snapshots evicted first (0 = unbounded)")
	sampleInterval := flag.Duration("sample-interval", def.SampleInterval, "telemetry sweep interval for the in-process time-series store (0 = telemetry off)")
	sampleRetention := flag.Int("sample-retention", def.SampleRetention, "samples retained per telemetry series (0 = default)")
	liveStream := flag.Bool("live-stream", def.LiveStream, "serve the /debug/live SSE telemetry stream (requires telemetry)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := core.NewWebToolConfig(web.Config{
		Seed:            *seed,
		MaxQubits:       *maxQubits,
		MaxOps:          *maxOps,
		MaxNodes:        *maxNodes,
		MaxBodyBytes:    *maxBody,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		RequestTimeout:  *reqTimeout,
		NoisyWorkers:    *noisyWorkers,
		SpillDir:        *spillDir,
		SpillMaxBytes:   *spillMaxBytes,
		TraceSpans:      *traceSpans,
		ShapeInterval:   *shapeInterval,
		SampleInterval:  *sampleInterval,
		SampleRetention: *sampleRetention,
		LiveStream:      *liveStream,
		Logger:          logger,
	})
	defer srv.Close()

	writeTimeout := time.Minute
	if *reqTimeout > 0 {
		// Leave headroom so the per-request deadline (which yields a
		// JSON error) fires before the connection is cut.
		writeTimeout = *reqTimeout + 5*time.Second
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	var admin *http.Server
	if *adminAddr != "" {
		adminMux := obs.AdminMuxWith(srv.MetricsHandler())
		// The debug bundle blocks for its CPU-profile window, so it
		// lives on the admin listener only, next to pprof.
		adminMux.Handle("GET /debug/bundle", srv.BundleHandler())
		// Readiness (with component probes and SLO burn) and the
		// per-session resource ranking are operational surfaces too —
		// AdminMuxWith's /healthz stays the bare liveness check.
		adminMux.Handle("GET /readyz", srv.ReadyzHandler())
		adminMux.Handle("GET /debug/sessions/top", srv.SessionsTopHandler())
		admin = &http.Server{
			Addr:              *adminAddr,
			Handler:           adminMux,
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// The admin listener is auxiliary: losing it should not
				// take down the tool, but the operator must know.
				logger.Error("admin listener failed", "addr", *adminAddr, "error", err)
			}
		}()
	}

	display := *addr
	if strings.HasPrefix(display, ":") {
		display = "localhost" + display
	}
	fmt.Printf("visualizing decision diagrams for quantum computing\n")
	fmt.Printf("serving on http://%s\n", display)
	if admin != nil {
		fmt.Printf("admin endpoints (metrics, pprof) on http://%s\n", *adminAddr)
	}

	select {
	case err := <-errc:
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down", "drain", "10s")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if admin != nil {
			if err := admin.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				logger.Error("admin shutdown failed", "error", err)
			}
		}
		if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
	}
}
