// Command ddsim simulates a quantum circuit (.qasm or .real) on
// decision diagrams and reports the classical results, the final-state
// amplitudes or samples, an optional ASCII drawing of the diagram, and
// circuit/DD statistics.
//
// Usage:
//
//	ddsim [-seed 1] [-shots 0] [-amplitudes] [-trace] [-draw] [-stats] file
package main

import (
	"os"

	"quantumdd/internal/cli"
)

func main() { os.Exit(cli.RunDdsim(os.Args[1:], os.Stdout, os.Stderr)) }
