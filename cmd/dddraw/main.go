// Command dddraw renders the decision diagram of a circuit's final
// state or of its functionality matrix to SVG, Graphviz DOT, or ASCII,
// in any of the tool's styles (classic, colored, modern).
//
// Usage:
//
//	dddraw [-what state|functionality] [-style classic] [-out dd.svg] circuit.qasm
//	dddraw -colorwheel -out wheel.svg
package main

import (
	"os"

	"quantumdd/internal/cli"
)

func main() { os.Exit(cli.RunDddraw(os.Args[1:], os.Stdout, os.Stderr)) }
