// Command ddverify checks the equivalence of two quantum circuits
// with decision diagrams (Sec. III-C / IV-C): either by constructing
// and comparing the canonical system matrices, or by the advanced
// alternating scheme that keeps the intermediate diagram close to the
// identity (Ex. 12).
//
// Usage:
//
//	ddverify [-strategy proportional] [-trace] [-diagnose] left.qasm right.qasm
//
// Exit status: 0 equivalent, 1 not equivalent, 2 usage/parse error.
package main

import (
	"os"

	"quantumdd/internal/cli"
)

func main() { os.Exit(cli.RunDdverify(os.Args[1:], os.Stdout, os.Stderr)) }
