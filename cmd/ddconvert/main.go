// Command ddconvert translates circuits between the tool's two input
// formats — OpenQASM 2.0 and RevLib .real — and can re-verify with
// decision diagrams that the translation preserved the functionality.
//
// Usage:
//
//	ddconvert -to qasm toffoli.real          # .real → QASM on stdout
//	ddconvert -to real -check circuit.qasm   # QASM → .real, DD-verified
package main

import (
	"os"

	"quantumdd/internal/cli"
)

func main() { os.Exit(cli.RunDdconvert(os.Args[1:], os.Stdout, os.Stderr)) }
