// Command ddbench regenerates the paper's figures and worked examples
// as data tables (the per-experiment index of DESIGN.md), plus the
// supplementary scaling and ablation studies.
//
// Usage:
//
//	ddbench            # run everything
//	ddbench -exp E6    # run one experiment
//	ddbench -list      # list experiment IDs
package main

import (
	"os"

	"quantumdd/internal/cli"
)

func main() { os.Exit(cli.RunDdbench(os.Args[1:], os.Stdout, os.Stderr)) }
