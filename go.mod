module quantumdd

go 1.22
